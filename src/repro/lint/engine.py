"""The rule engine: walk files, parse once, run every applicable rule.

Two passes.  The file sweep parses each module once and runs the
per-file :class:`Rule`s on it; the parsed trees are retained and, plus
any ``.toml`` scenario specs under the linted paths, assembled into a
:class:`~repro.lint.contracts.ContractGraph` over which the whole-program
:class:`GraphRule`s run.  Baseline filtering and staleness detection see
the union of both passes' findings.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.contracts import ContractGraph, build_contract_graph, iter_toml_files
from repro.lint.findings import Finding, Severity
from repro.lint.rules import ALL_RULES
from repro.lint.rules.base import GraphRule, Rule


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield every ``.py`` file under *paths* (files pass through as-is)."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


@dataclass
class LintReport:
    """Everything one engine run produced."""

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    parse_errors: list[tuple[str, str]] = field(default_factory=list)
    files_checked: int = 0
    stale_baseline: list[str] = field(default_factory=list)
    graph: Optional[ContractGraph] = None

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        return not self.errors and not self.parse_errors


class LintEngine:
    """Runs a rule set over a file tree, with optional baseline filtering."""

    def __init__(
        self,
        rules: Optional[Sequence] = None,
        baseline: Optional[Baseline] = None,
    ) -> None:
        self.rules: tuple = tuple(rules if rules is not None else ALL_RULES)
        self.file_rules: tuple = tuple(
            r for r in self.rules if not isinstance(r, GraphRule)
        )
        self.graph_rules: tuple = tuple(
            r for r in self.rules if isinstance(r, GraphRule)
        )
        self.baseline = baseline or Baseline()

    def check_source(self, path: str, source: str) -> list[Finding]:
        """Lint one in-memory source blob with the per-file rules only
        (fixtures use this directly; graph rules need a whole tree)."""
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
        findings: list[Finding] = []
        for rule in self.file_rules:
            if rule.applies(path):
                findings.extend(rule.check(path, tree, lines))
        findings.sort(key=lambda f: f.sort_key())
        return findings

    def run(self, paths: Sequence[str]) -> LintReport:
        report = LintReport()
        all_findings: list[Finding] = []
        modules: list[tuple] = []
        for filepath in iter_python_files(paths):
            norm = filepath.replace(os.sep, "/")
            try:
                with open(filepath, "r", encoding="utf-8") as handle:
                    source = handle.read()
                tree = ast.parse(source, filename=norm)
            except (SyntaxError, UnicodeDecodeError, OSError) as err:
                report.parse_errors.append((norm, str(err)))
                continue
            lines = source.splitlines()
            modules.append((norm, tree, lines))
            for rule in self.file_rules:
                if rule.applies(norm):
                    all_findings.extend(rule.check(norm, tree, lines))
            report.files_checked += 1

        if self.graph_rules:
            toml_docs: list[tuple] = []
            for toml_path in iter_toml_files(paths):
                norm = toml_path.replace(os.sep, "/")
                try:
                    with open(toml_path, "r", encoding="utf-8") as handle:
                        toml_docs.append((norm, handle.read()))
                except (UnicodeDecodeError, OSError):
                    continue
            report.graph = build_contract_graph(modules, toml_docs)
            for rule in self.graph_rules:
                all_findings.extend(rule.check_graph(report.graph))

        all_findings.sort(key=lambda f: f.sort_key())
        for finding in all_findings:
            if self.baseline.matches(finding):
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
        report.stale_baseline = self.baseline.unused(all_findings)
        return report


def lint_paths(
    paths: Sequence[str],
    baseline: Optional[Baseline] = None,
    rules: Optional[Iterable] = None,
) -> LintReport:
    """One-call API: lint *paths* and return the report."""
    engine = LintEngine(
        rules=tuple(rules) if rules is not None else None, baseline=baseline
    )
    return engine.run(paths)

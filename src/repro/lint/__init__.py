"""`repro.lint` — the determinism & layering sanitizer.

Everything this reproduction claims rests on byte-reproducible simulation:
the digest-neutrality of telemetry, the invariant monitors' exactly-once
and supply-conservation audits, and every E1–E11 experiment.  One
``time.time()``, one unseeded ``random`` draw or one ``set`` iteration in
a consensus hot path silently breaks that property.  This package turns
the assumption into a checked one:

- **DET001** — no wall-clock or OS entropy (``time.time``,
  ``datetime.now``, ``os.urandom``, module-level ``random.*`` draws)
  outside ``crypto/`` and ``sim/rng.py``;
- **DET002** — no iteration over ``set``-typed values feeding
  ordering-sensitive logic in ``consensus/``, ``chain/``, ``hierarchy/``
  (wrap in ``sorted(...)``);
- **DET003** — no ``float`` arithmetic in value/supply accounting
  (``hierarchy/firewall.py``, ``hierarchy/crossmsg*``,
  ``hierarchy/gateway.py``);
- **LAY001** — the import-layering contract (see
  :data:`repro.lint.config.LAYERS`): no upward or skipped-contract edges
  at module scope;
- **SIM001** — event handlers must not mutate scheduler state
  (``sim.now``, the queue's internals) except through the dispatch API
  (``schedule``/``schedule_at``/``cancel``/``every``/``halt``).

On top of the per-file rules sits a **whole-program pass**: every linted
module (plus TOML scenario specs) is folded into a contract graph of the
tree's string-keyed seams (:mod:`repro.lint.contracts`), and graph rules
check its edges:

- **MSG001** — a gossip publish whose topic no subscriber matches;
- **MSG002** — a subscription on a topic nothing publishes;
- **MSG003** — an RPC call to a method no ``expose()`` registers;
- **MET001** — emitted metric families and the exporter's
  ``METRIC_CATALOG`` must agree, in both directions;
- **SCN001** — scenario auditor/fault-kind references (Python or TOML)
  must name a registered class.

Run it with ``python -m repro.lint src/repro``.  Findings not in the
committed baseline (``LINT_BASELINE.txt``) fail the run; the baseline
grandfathers provably-benign findings, one justifying comment per entry.
``--contracts PATH`` dumps the extracted graph as JSON;
``--format=github`` emits workflow-command annotations for CI.

The static pass is paired with a *runtime* race detector:
``Simulator(tie_shuffle=<seed>)`` (or ``$REPRO_TIE_SHUFFLE``)
deterministically permutes same-timestamp event ties; comparing
``HierarchicalSystem.end_state_digest()`` across shuffle seeds flushes
out hidden tie-order dependence that no syntactic rule can see.
"""

from repro.lint.findings import Finding, Severity
from repro.lint.engine import LintEngine, lint_paths, iter_python_files
from repro.lint.baseline import Baseline, load_baseline, format_baseline_entry
from repro.lint.contracts import ContractGraph, Site, build_contract_graph
from repro.lint.rules import ALL_RULES

__all__ = [
    "Finding",
    "Severity",
    "LintEngine",
    "lint_paths",
    "iter_python_files",
    "Baseline",
    "load_baseline",
    "format_baseline_entry",
    "ContractGraph",
    "Site",
    "build_contract_graph",
    "ALL_RULES",
]

"""CLI: ``python -m repro.lint [paths…]``.

Exit status 0 when every ERROR finding is baselined (or none exist),
1 otherwise.  See the package docstring for the rule catalogue.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    format_baseline_entry,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import lint_paths
from repro.lint.findings import Severity
from repro.lint.rules import ALL_RULES


def _default_baseline_path(paths) -> str:
    """Look for the committed baseline next to the linted tree.

    Walks up from the first linted path so the CLI works from the repo
    root (``src/repro`` → ``./LINT_BASELINE.txt``) and from ``src/``.
    """
    start = os.path.abspath(paths[0] if paths else ".")
    probe = start if os.path.isdir(start) else os.path.dirname(start)
    for _ in range(6):
        candidate = os.path.join(probe, DEFAULT_BASELINE_NAME)
        if os.path.exists(candidate):
            return candidate
        parent = os.path.dirname(probe)
        if parent == probe:
            break
        probe = parent
    return os.path.join(os.getcwd(), DEFAULT_BASELINE_NAME)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="determinism & layering sanitizer for the repro tree",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint (default: src/repro)")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: nearest {DEFAULT_BASELINE_NAME})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline; report everything")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write all current findings to the baseline file and exit")
    parser.add_argument("--format", choices=("text", "json", "github"), default="text")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--contracts", default=None, metavar="PATH",
                        help="dump the extracted contract graph as JSON to PATH "
                             "('-' for stdout)")
    args = parser.parse_args(argv)

    rules = ALL_RULES
    if args.rules:
        wanted = {r.strip().upper() for r in args.rules.split(",")}
        rules = tuple(r for r in ALL_RULES if r.rule_id in wanted)
        unknown = wanted - {r.rule_id for r in rules}
        if unknown:
            parser.error(f"unknown rule ids: {', '.join(sorted(unknown))}")

    baseline_path = args.baseline or _default_baseline_path(args.paths)
    baseline = None if args.no_baseline else load_baseline(baseline_path)

    report = lint_paths(args.paths, baseline=baseline, rules=rules)

    if args.contracts:
        if report.graph is None:
            parser.error("--contracts requires at least one graph rule "
                         "(MSG*/MET*/SCN*) to be enabled")
        document = json.dumps(report.graph.to_json(), indent=2, sort_keys=True)
        if args.contracts == "-":
            print(document)
        else:
            with open(args.contracts, "w", encoding="utf-8") as handle:
                handle.write(document + "\n")

    if args.write_baseline:
        count = write_baseline(baseline_path, report.findings + report.baselined)
        print(f"wrote {count} entries to {baseline_path} — now justify each one")
        return 0

    if args.format == "json":
        json.dump(
            {
                "files_checked": report.files_checked,
                "findings": [
                    {
                        "rule": f.rule_id,
                        "severity": str(f.severity),
                        "path": f.path,
                        "line": f.line,
                        "col": f.col,
                        "message": f.message,
                        "fix_hint": f.fix_hint,
                    }
                    for f in report.findings
                ],
                "baselined": [format_baseline_entry(f) for f in report.baselined],
                "stale_baseline": report.stale_baseline,
                "parse_errors": report.parse_errors,
                "ok": report.ok,
            },
            sys.stdout,
            indent=2,
        )
        print()
        return 0 if report.ok else 1

    if args.format == "github":
        # Workflow-command annotations: one line per finding, surfaced by
        # GitHub as inline PR comments.  Messages must be single-line with
        # %, CR and LF percent-escaped.
        def esc(text: str) -> str:
            return (
                text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
            )

        for path, err in report.parse_errors:
            print(f"::error file={path},title=parse-error::{esc(err)}")
        for f in report.findings:
            level = "error" if f.severity is Severity.ERROR else "warning"
            message = f.message if not f.fix_hint else f"{f.message} [{f.fix_hint}]"
            print(
                f"::{level} file={f.path},line={f.line},col={f.col + 1},"
                f"title={f.rule_id}::{esc(message)}"
            )
        for entry in report.stale_baseline:
            print(f"::warning title=stale-baseline::{esc(entry)}")
        return 0 if report.ok else 1

    for path, err in report.parse_errors:
        print(f"{path}: PARSE ERROR: {err}")
    for finding in report.findings:
        print(finding.render())
    if report.baselined:
        print(f"\n{len(report.baselined)} baselined finding(s) suppressed "
              f"(see {baseline.path}):")
        for finding in report.baselined:
            why = baseline.justification(finding) or "(no justification?)"
            print(f"  {finding.rule_id} {finding.path}:{finding.line} — {why}")
    if report.stale_baseline:
        print(f"\n{len(report.stale_baseline)} stale baseline entr"
              f"{'y' if len(report.stale_baseline) == 1 else 'ies'} "
              "(no longer matched — prune them):")
        for entry in report.stale_baseline:
            print(f"  {entry}")
    status = "clean" if report.ok else f"{len(report.errors)} error(s)"
    print(f"\nrepro.lint: {report.files_checked} files checked, {status}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())

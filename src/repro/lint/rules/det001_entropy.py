"""DET001 — no wall-clock or OS entropy outside the sanctioned modules.

A deterministic simulation has exactly one clock (``sim.now``) and one
randomness root (``sim.rng(*scope)``, backed by ``sim/rng.py``).  Reading
the host's wall clock or entropy pool anywhere else silently breaks
byte-reproducibility — the precondition every digest test, invariant audit
and experiment in this repo relies on.

Flagged:

- ``time.time`` / ``time.time_ns`` / ``datetime.now`` / ``datetime.utcnow``
  / ``datetime.today`` (wall clock — use ``sim.now``);
- ``os.urandom``, ``uuid.uuid1``/``uuid.uuid4``, ``random.SystemRandom``,
  and any import of ``secrets`` (OS entropy);
- module-level ``random.<draw>()`` calls and ``from random import <draw>``
  (the process-global, effectively unseeded stream — use
  ``sim.rng(*scope)`` or an explicit ``random.Random(seed)``).

Deliberately *not* flagged: ``time.perf_counter``/``monotonic`` (wall-time
profiling is digest-neutral by design — it feeds metrics, never the trace)
and ``random.Random(seed)`` construction (explicitly seeded).
"""

from __future__ import annotations

import ast
from typing import Sequence

from repro.lint.config import DET001_EXEMPT_PREFIXES, repro_relpath
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, dotted_name, has_noqa

# Attribute chains that read the wall clock or entropy pool.
_FORBIDDEN_CALLS = {
    "time.time": "wall-clock read; use sim.now (simulated seconds)",
    "time.time_ns": "wall-clock read; use sim.now (simulated seconds)",
    "datetime.now": "wall-clock read; use sim.now (simulated seconds)",
    "datetime.utcnow": "wall-clock read; use sim.now (simulated seconds)",
    "datetime.today": "wall-clock read; use sim.now (simulated seconds)",
    "datetime.datetime.now": "wall-clock read; use sim.now (simulated seconds)",
    "datetime.datetime.utcnow": "wall-clock read; use sim.now (simulated seconds)",
    "os.urandom": "OS entropy; derive from sim.rng(*scope) instead",
    "uuid.uuid1": "host-dependent id; derive a CID or use sim.rng(*scope)",
    "uuid.uuid4": "OS entropy; derive a CID or use sim.rng(*scope)",
    "random.SystemRandom": "OS entropy; use sim.rng(*scope)",
}

# Module-level random draws (the process-global stream).  random.Random is
# absent on purpose: explicitly-seeded generators are the sanctioned tool.
_RANDOM_DRAWS = {
    "seed", "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate", "betavariate",
    "triangular", "vonmisesvariate", "paretovariate", "weibullvariate",
    "lognormvariate", "getrandbits", "randbytes",
}


class Det001Entropy(Rule):
    rule_id = "DET001"
    fix_hint = "route all time through sim.now and all randomness through sim.rng(*scope)"

    def applies(self, path: str) -> bool:
        rel = repro_relpath(path)
        if rel is None:
            return False
        return not any(rel.startswith(prefix) for prefix in DET001_EXEMPT_PREFIXES)

    def check(self, path: str, tree: ast.Module, lines: Sequence[str]) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                reason = _FORBIDDEN_CALLS.get(name)
                if reason is None and name.startswith("random."):
                    attr = name.split(".", 1)[1]
                    if attr in _RANDOM_DRAWS:
                        reason = (
                            "module-level random draw (process-global stream); "
                            "use sim.rng(*scope) or random.Random(seed)"
                        )
                if reason is not None and not has_noqa(lines, node, self.rule_id):
                    findings.append(
                        self.finding(path, node, f"{name}(): {reason}", lines)
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    bad = [a.name for a in node.names if a.name in _RANDOM_DRAWS]
                    if bad and not has_noqa(lines, node, self.rule_id):
                        findings.append(
                            self.finding(
                                path, node,
                                f"from random import {', '.join(bad)}: module-level "
                                "random draws; use sim.rng(*scope)",
                                lines,
                            )
                        )
                elif node.module == "secrets" and not has_noqa(lines, node, self.rule_id):
                    findings.append(
                        self.finding(
                            path, node,
                            "import of secrets: OS entropy; use sim.rng(*scope)",
                            lines,
                        )
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "secrets" and not has_noqa(lines, node, self.rule_id):
                        findings.append(
                            self.finding(
                                path, node,
                                "import of secrets: OS entropy; use sim.rng(*scope)",
                                lines,
                            )
                        )
        return findings

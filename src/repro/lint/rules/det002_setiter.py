"""DET002 — no ordering-sensitive iteration over sets in consensus paths.

Python set iteration order depends on element hashes and insertion
history; for strings it varies run-to-run with hash randomization.  Any
set-ordered loop that feeds block assembly, validation or cross-net
routing therefore breaks byte-reproducibility.  In ``consensus/``,
``chain/`` and ``hierarchy/``, iterate ``sorted(the_set)`` instead.

The rule flags, within those packages:

- ``for x in <set>`` loops and list/dict-comprehension generators over
  set-typed expressions (literals, ``set()``/``frozenset()`` calls, set
  comprehensions, set-algebra binops including ``a.keys() - b.keys()``
  keys-view algebra, and local names assigned from any of those);
- ``list(<set>)`` / ``tuple(<set>)`` materializations (they freeze the
  arbitrary order into an ordered value);
- ``for x in d.keys()`` — dict order is insertion order, which is only as
  deterministic as every code path that populated the dict; consensus
  paths must make the order explicit with ``sorted(...)``.

Order-insensitive consumers (``sorted``, ``sum``, ``len``, ``min``,
``max``, ``any``, ``all``, set algebra itself) are not flagged.
"""

from __future__ import annotations

import ast
from typing import Sequence

from repro.lint.config import DET002_PACKAGES, in_packages
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, has_noqa

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


def _is_keys_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
        and not node.keywords
    )


class _ScopeVisitor(ast.NodeVisitor):
    """One pass over a single function (or module) scope."""

    def __init__(self, rule: "Det002SetIteration", path: str, lines: Sequence[str]):
        self.rule = rule
        self.path = path
        self.lines = lines
        self.set_locals: set[str] = set()
        self.findings: list[Finding] = []
        # Comprehensions fed directly into order-insensitive consumers
        # (sum(x for x in s), sorted(...)) — exempted by node identity.
        self._sanctioned: set[int] = set()

    # -- set-typedness inference --------------------------------------
    def is_set_typed(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            # keys-view algebra (a.keys() - b.keys()) yields a set; so does
            # set algebra on anything already inferred as a set.
            if _is_keys_call(node.left) or _is_keys_call(node.right):
                return True
            return self.is_set_typed(node.left) or self.is_set_typed(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.set_locals
        return False

    def _collect_assignment(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if self.is_set_typed(value):
                self.set_locals.add(target.id)
            else:
                self.set_locals.discard(target.id)  # rebinding clears it

    # -- scope boundaries ---------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.rule.check_scope(node, self.path, self.lines, self.findings)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for child in node.body:
            self.visit(child)

    # -- assignments ---------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        for target in node.targets:
            self._collect_assignment(target, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if node.value is not None:
            self._collect_assignment(node.target, node.value)

    # -- iteration sites ------------------------------------------------
    def _flag(self, node: ast.AST, what: str) -> None:
        if not has_noqa(self.lines, node, self.rule.rule_id):
            self.findings.append(self.rule.finding(self.path, node, what, self.lines))

    def visit_For(self, node: ast.For) -> None:
        self.generic_visit(node)
        if self.is_set_typed(node.iter):
            self._flag(node, "iteration over a set has no deterministic order")
        elif _is_keys_call(node.iter):
            self._flag(
                node,
                "iteration over dict.keys() in a consensus path; make the "
                "order explicit",
            )

    def _check_comprehension(self, node) -> None:
        self.generic_visit(node)
        if id(node) in self._sanctioned:
            return
        for gen in node.generators:
            if self.is_set_typed(gen.iter):
                self._flag(
                    node, "comprehension over a set has no deterministic order"
                )

    visit_ListComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    _ORDER_INSENSITIVE = frozenset(
        ("sorted", "sum", "len", "min", "max", "any", "all", "set", "frozenset")
    )

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id in self._ORDER_INSENSITIVE:
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.SetComp)):
                    self._sanctioned.add(id(arg))
        self.generic_visit(node)
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple")
            and len(node.args) == 1
            and self.is_set_typed(node.args[0])
        ):
            self._flag(
                node,
                f"{node.func.id}(<set>) freezes an arbitrary order into an "
                "ordered value",
            )


class Det002SetIteration(Rule):
    rule_id = "DET002"
    fix_hint = "iterate sorted(the_set) (or keep a canonically-ordered list alongside)"

    def applies(self, path: str) -> bool:
        return in_packages(path, DET002_PACKAGES)

    def check(self, path: str, tree: ast.Module, lines: Sequence[str]) -> list[Finding]:
        findings: list[Finding] = []
        self.check_scope(tree, path, lines, findings)
        return findings

    def check_scope(self, scope_node, path, lines, findings) -> None:
        """Analyse one lexical scope; nested functions recurse."""
        visitor = _ScopeVisitor(self, path, lines)
        body = scope_node.body if hasattr(scope_node, "body") else []
        for child in body:
            visitor.visit(child)
        findings.extend(visitor.findings)

"""MSG002 — a subscription on a topic nothing ever publishes.

The mirror image of MSG001: a handler wired to a topic no publisher
matches can never fire, which usually means the topic string drifted on
one side of the seam (the handler silently stops receiving and every
downstream invariant built on it goes quiet).

Skipped when the tree contains no publishes at all (partial tree).
"""

from __future__ import annotations

from repro.lint.contracts import (
    ContractGraph,
    closest_patterns,
    patterns_compatible,
    site_suppressed,
)
from repro.lint.findings import Finding
from repro.lint.rules.base import GraphRule, endpoints


def _nearest(pattern: str, sites) -> str:
    by_pattern: dict = {}
    for site in sites:
        by_pattern.setdefault(site.pattern, []).append(site)
    parts = []
    for near in closest_patterns(pattern, by_pattern):
        parts.append(f"'{near}' ({endpoints(by_pattern[near])})")
    return "; ".join(parts)


class Msg002DeadSubscription(GraphRule):
    rule_id = "MSG002"
    fix_hint = "align the topic string with an existing publish, or remove the subscription"

    def check_graph(self, graph: ContractGraph) -> list[Finding]:
        findings: list[Finding] = []
        if not graph.topics_published:
            return findings
        pub_patterns = {site.pattern for site in graph.topics_published}
        for sub in graph.topics_subscribed:
            if site_suppressed(sub, self.rule_id):
                continue
            if any(patterns_compatible(sub.pattern, p) for p in pub_patterns):
                continue
            findings.append(
                self.site_finding(
                    sub,
                    f"subscription on topic '{sub.pattern}' that nothing publishes; "
                    f"nearest publishes: {_nearest(sub.pattern, graph.topics_published)}",
                )
            )
        return findings

"""MSG003 — an RPC call to a method no peer registers a server for.

``RpcChannel.call`` with a method string nobody ``expose``d times out on
every request: the caller's error path runs, but the intended exchange
(e.g. ``chain:blocks`` block-range sync) silently never happens.  Every
call site's method pattern must be compatible with at least one
registered endpoint's pattern.

Skipped when the tree registers no endpoints at all (partial tree).
"""

from __future__ import annotations

from repro.lint.contracts import (
    ContractGraph,
    closest_patterns,
    patterns_compatible,
    site_suppressed,
)
from repro.lint.findings import Finding
from repro.lint.rules.base import GraphRule, endpoints


def _nearest(pattern: str, sites) -> str:
    by_pattern: dict = {}
    for site in sites:
        by_pattern.setdefault(site.pattern, []).append(site)
    parts = []
    for near in closest_patterns(pattern, by_pattern):
        parts.append(f"'{near}' ({endpoints(by_pattern[near])})")
    return "; ".join(parts)


class Msg003UnservedRpc(GraphRule):
    rule_id = "MSG003"
    fix_hint = "match the call's method string to a registered expose(), or register the endpoint"

    def check_graph(self, graph: ContractGraph) -> list[Finding]:
        findings: list[Finding] = []
        if not graph.rpc_served:
            return findings
        served_patterns = {site.pattern for site in graph.rpc_served}
        for call in graph.rpc_called:
            if site_suppressed(call, self.rule_id):
                continue
            if any(patterns_compatible(call.pattern, p) for p in served_patterns):
                continue
            findings.append(
                self.site_finding(
                    call,
                    f"RPC call to method '{call.pattern}' with no registered server "
                    f"endpoint; registered endpoints: "
                    f"{_nearest(call.pattern, graph.rpc_served)}",
                )
            )
        return findings

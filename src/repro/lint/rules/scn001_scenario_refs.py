"""SCN001 — a scenario referencing an auditor or fault kind that does not exist.

Scenario expectations (``violates("finality")``) and fault specs
(``kind = "partition"``) are resolved by string lookup at run time; a
name that matches no registered auditor/fault class either raises deep
inside a campaign or — worse, for ``tolerate`` lists — silently never
trips, making the scenario's pass unconditional.  Every reference, in
Python or in a TOML spec, must name a declared registry key exactly.

Each side is skipped when the tree declares no keys of that kind
(partial tree without the registry module in view).
"""

from __future__ import annotations

from repro.lint.contracts import ContractGraph, closest_patterns, site_suppressed
from repro.lint.findings import Finding
from repro.lint.rules.base import GraphRule, endpoints


class Scn001ScenarioRefs(GraphRule):
    rule_id = "SCN001"
    fix_hint = "use a registered name, or register the auditor/fault class"

    def check_graph(self, graph: ContractGraph) -> list[Finding]:
        findings: list[Finding] = []
        findings.extend(
            self._check(
                graph.auditors_referenced, graph.auditors_declared, "auditor"
            )
        )
        findings.extend(
            self._check(
                graph.fault_kinds_referenced, graph.fault_kinds_declared, "fault kind"
            )
        )
        return findings

    def _check(self, referenced, declared, what: str) -> list[Finding]:
        if not declared:
            return []
        known = {site.pattern: site for site in declared}
        findings: list[Finding] = []
        for ref in referenced:
            if site_suppressed(ref, self.rule_id):
                continue
            if ref.pattern in known:
                continue
            near = "; ".join(
                f"'{p}' ({endpoints([known[p]])})"
                for p in closest_patterns(ref.pattern, known)
            )
            findings.append(
                self.site_finding(
                    ref,
                    f"scenario references unknown {what} '{ref.pattern}'; "
                    f"declared: {near}",
                )
            )
        return findings

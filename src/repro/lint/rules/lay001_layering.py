"""LAY001 — the import-layering contract.

The stack layers strictly (see :data:`repro.lint.config.LAYERS` and the
DESIGN.md diagram)::

    crypto/analysis/lint < sim < net/storage < vm < chain/consensus
                         < runtime < hierarchy < workloads/baselines
                         < telemetry

A module may import, at module scope, only packages at its own rank or
below.  Equal ranks form one architectural layer and may interdepend
(chain ↔ consensus).  Upward module-scope edges create import cycles,
drag heavy layers under light ones, and let observability code leak into
protocol logic.

Function-local lazy imports are exempt by design: they are the sanctioned
escape hatch for *optional* upward wiring (``enable_telemetry`` pulling in
``repro.telemetry`` only when a run opts in) — they cannot create import
cycles and keep the lower layer dependency-free by default.
"""

from __future__ import annotations

import ast
from typing import Optional, Sequence

from repro.lint.config import LAYERS, package_of
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, has_noqa


def _imported_repro_package(node: ast.AST) -> Optional[str]:
    """The top-level repro package a module-scope import pulls in."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] == "repro" and len(parts) > 1:
                return parts[1]
    elif isinstance(node, ast.ImportFrom):
        if node.module:
            parts = node.module.split(".")
            if parts[0] == "repro":
                if len(parts) > 1:
                    return parts[1]
                # "from repro import hierarchy" — the names are packages.
                for alias in node.names:
                    if alias.name in LAYERS:
                        return alias.name
    return None


class Lay001Layering(Rule):
    rule_id = "LAY001"
    fix_hint = (
        "depend downward only; if the upward wiring is optional, import "
        "lazily inside the function that needs it"
    )

    def applies(self, path: str) -> bool:
        pkg = package_of(path)
        return pkg is not None and pkg in LAYERS

    def check(self, path: str, tree: ast.Module, lines: Sequence[str]) -> list[Finding]:
        this_pkg = package_of(path)
        this_rank = LAYERS[this_pkg]
        findings: list[Finding] = []
        # Module scope only: walk top-level statements (including inside
        # top-level try/if blocks, which still execute at import time) but
        # never descend into function bodies.
        for node in self._module_scope_nodes(tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            pkg = _imported_repro_package(node)
            if pkg is None or pkg == this_pkg:
                continue
            rank = LAYERS.get(pkg)
            if rank is None:
                continue
            if rank > this_rank and not has_noqa(lines, node, self.rule_id):
                findings.append(
                    self.finding(
                        path, node,
                        f"{this_pkg} (layer {this_rank}) imports {pkg} "
                        f"(layer {rank}) at module scope — upward edge",
                        lines,
                    )
                )
        return findings

    def _module_scope_nodes(self, tree: ast.Module):
        """Yield statements that run at import time (no function bodies)."""
        stack = list(tree.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.If, ast.Try, ast.With)):
                for attr in ("body", "orelse", "finalbody", "handlers", "items"):
                    for child in getattr(node, attr, []):
                        if isinstance(child, ast.ExceptHandler):
                            stack.extend(child.body)
                        elif isinstance(child, ast.stmt):
                            stack.append(child)

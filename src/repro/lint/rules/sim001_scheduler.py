"""SIM001 — event handlers must not mutate scheduler state except via dispatch.

The simulator's clock and queue are the substrate every determinism
argument stands on.  A component that writes ``sim.now``, reaches into
``sim.queue``'s internals, or pushes/pops the queue directly bypasses the
dispatch bus (no instrumentation, no tie ordering, no trace) and can move
time backwards or reorder events invisibly.  Outside ``repro/sim``, the
only legal verbs are the scheduling API: ``schedule``, ``schedule_at``,
``cancel``, ``every``, ``halt`` (plus read-only access to ``sim.now``).

Flagged outside the sim package:

- assignments (plain or augmented) to a ``.now`` attribute of a sim-like
  receiver (``sim``, ``self.sim``, ``*.sim``) or to ``.queue``;
- any access to private simulator/queue internals through a sim-like
  receiver (``sim._halted``, ``sim.queue._heap``, ``queue._seq`` …);
- direct calls to ``<anything>.queue.push(...)`` / ``.queue.pop(...)``.
"""

from __future__ import annotations

import ast
from typing import Sequence

from repro.lint.config import SIM001_EXEMPT_PACKAGES, package_of
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, dotted_name, has_noqa

_PRIVATE_SIM_ATTRS = {"_heap", "_seq", "_live", "_events_executed", "_halted", "_tie_shuffle"}


def _is_sim_receiver(node: ast.AST) -> bool:
    """Heuristic: does this expression look like a Simulator reference?"""
    name = dotted_name(node)
    if name is None:
        return False
    last = name.split(".")[-1]
    return last in ("sim", "simulator", "scheduler")


def _is_queue_receiver(node: ast.AST) -> bool:
    name = dotted_name(node)
    if name is None:
        return False
    last = name.split(".")[-1]
    return last == "queue" or _is_sim_receiver(node)


class Sim001SchedulerMutation(Rule):
    rule_id = "SIM001"
    fix_hint = (
        "use the dispatch API: sim.schedule/schedule_at/cancel/every/halt; "
        "never write sim.now or touch queue internals"
    )

    def applies(self, path: str) -> bool:
        pkg = package_of(path)
        return pkg is not None and pkg not in SIM001_EXEMPT_PACKAGES

    def check(self, path: str, tree: ast.Module, lines: Sequence[str]) -> list[Finding]:
        findings: list[Finding] = []

        def flag(node: ast.AST, message: str) -> None:
            if not has_noqa(lines, node, self.rule_id):
                findings.append(self.finding(path, node, message, lines))

        for node in ast.walk(tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    if target.attr == "now" and _is_sim_receiver(target.value):
                        flag(node, "assignment to sim.now — only the run loop advances time")
                    elif target.attr == "queue" and _is_sim_receiver(target.value):
                        flag(node, "replacing sim.queue — scheduler state is not swappable")
            elif isinstance(node, ast.Attribute):
                if node.attr in _PRIVATE_SIM_ATTRS and _is_queue_receiver(node.value):
                    flag(
                        node,
                        f"access to scheduler internal .{node.attr} — use the dispatch API",
                    )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                func = node.func
                if (
                    func.attr in ("push", "pop")
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "queue"
                ):
                    flag(
                        node,
                        f"direct queue.{func.attr}() bypasses the dispatch bus — "
                        "use sim.schedule/schedule_at",
                    )
        return findings

"""MET001 — metric emissions and the exporter catalog must agree, both ways.

The Prometheus exporter's ``METRIC_CATALOG`` is the declared surface of
the telemetry plane: dashboards and the paper's figure scripts key on
those families.  An emitted metric missing from the catalog ships with
no HELP text and no review of its name; a declared family that nothing
emits is a dashboard panel that will stay blank forever (usually a stale
entry after a rename).  Each direction anchors the finding at its own
endpoint — the emit site, or the catalog entry's line — so a pragma on
either side suppresses only that edge.

Both directions are skipped on partial trees: emitted-but-undeclared
needs a catalog in view, declared-but-unemitted needs emit sites in view.
"""

from __future__ import annotations

from repro.lint.contracts import (
    ContractGraph,
    closest_patterns,
    metric_patterns_compatible,
    site_suppressed,
)
from repro.lint.findings import Finding
from repro.lint.rules.base import GraphRule, endpoints


class Met001MetricCatalog(GraphRule):
    rule_id = "MET001"
    fix_hint = (
        "add the family to METRIC_CATALOG in repro/telemetry/export.py, "
        "or fix the emitted name to match a declared family"
    )

    def check_graph(self, graph: ContractGraph) -> list[Finding]:
        findings: list[Finding] = []
        declared = {site.pattern for site in graph.metric_catalog}
        emitted = {site.pattern for site in graph.metrics_emitted}

        if declared:
            catalog_at = endpoints(graph.metric_catalog[:1])
            for emit in graph.metrics_emitted:
                if site_suppressed(emit, self.rule_id):
                    continue
                if any(metric_patterns_compatible(emit.pattern, d) for d in declared):
                    continue
                near = ", ".join(
                    f"'{p}'" for p in closest_patterns(emit.pattern, declared)
                )
                findings.append(
                    self.site_finding(
                        emit,
                        f"emitted metric '{emit.pattern}' has no exporter "
                        f"declaration in METRIC_CATALOG ({catalog_at}); "
                        f"nearest declared families: {near}",
                    )
                )

        if emitted:
            for decl in graph.metric_catalog:
                if site_suppressed(decl, self.rule_id):
                    continue
                if any(metric_patterns_compatible(decl.pattern, e) for e in emitted):
                    continue
                near = ", ".join(
                    f"'{p}'" for p in closest_patterns(decl.pattern, emitted)
                )
                findings.append(
                    self.site_finding(
                        decl,
                        f"declared metric family '{decl.pattern}' is never emitted "
                        f"anywhere in the tree; nearest emitted families: {near}",
                        fix_hint="drop the stale catalog entry or fix the emitter",
                    )
                )
        return findings

"""MSG001 — a gossip publish whose topic no subscriber anywhere matches.

Topics are the transport seam between ``runtime``, ``hierarchy`` and
``net``: a publish on a topic nobody subscribes to is delivered to an
empty mesh and vanishes without an error.  Every publish site's resolved
topic pattern must be compatible with at least one subscribe site's
pattern somewhere in the linted tree.

The check is skipped when the tree contains no subscriptions at all
(linting a partial tree, e.g. a single producer module, proves nothing
about the full program).
"""

from __future__ import annotations

from repro.lint.contracts import (
    ContractGraph,
    closest_patterns,
    patterns_compatible,
    site_suppressed,
)
from repro.lint.findings import Finding
from repro.lint.rules.base import GraphRule, endpoints


def _nearest(pattern: str, sites) -> str:
    by_pattern: dict = {}
    for site in sites:
        by_pattern.setdefault(site.pattern, []).append(site)
    parts = []
    for near in closest_patterns(pattern, by_pattern):
        parts.append(f"'{near}' ({endpoints(by_pattern[near])})")
    return "; ".join(parts)


class Msg001OrphanPublish(GraphRule):
    rule_id = "MSG001"
    fix_hint = "align the topic string with an existing subscription, or remove the publish"

    def check_graph(self, graph: ContractGraph) -> list[Finding]:
        findings: list[Finding] = []
        if not graph.topics_subscribed:
            return findings
        sub_patterns = {site.pattern for site in graph.topics_subscribed}
        for pub in graph.topics_published:
            if site_suppressed(pub, self.rule_id):
                continue
            if any(patterns_compatible(pub.pattern, p) for p in sub_patterns):
                continue
            findings.append(
                self.site_finding(
                    pub,
                    f"publish on topic '{pub.pattern}' has no subscriber anywhere "
                    f"in the tree; nearest subscriptions: "
                    f"{_nearest(pub.pattern, graph.topics_subscribed)}",
                )
            )
        return findings

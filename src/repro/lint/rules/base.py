"""The rule protocol and shared AST helpers."""

from __future__ import annotations

import ast
from typing import Optional, Sequence

from repro.lint.findings import Finding, Severity


class Rule:
    """One lint rule: a scoped AST pass producing :class:`Finding`s."""

    rule_id: str = "RULE000"
    severity: Severity = Severity.ERROR
    fix_hint: str = ""

    def applies(self, path: str) -> bool:
        """Whether this rule runs on *path* (repo-relative)."""
        raise NotImplementedError

    def check(self, path: str, tree: ast.Module, lines: Sequence[str]) -> list[Finding]:
        """Return every violation of this rule in the parsed file."""
        raise NotImplementedError

    # -- helpers -------------------------------------------------------
    def finding(
        self,
        path: str,
        node: ast.AST,
        message: str,
        lines: Sequence[str],
        fix_hint: Optional[str] = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        source = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=path,
            line=line,
            col=col,
            message=message,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
            source_line=source,
        )


class GraphRule:
    """A whole-program rule: checks the assembled contract graph.

    Graph rules run once per engine invocation (not per file) and see
    every extracted interface point at once — that is what lets them
    pair a publish in ``runtime`` with its subscribe in ``hierarchy``.
    Pragma suppression is per *endpoint*: a ``# lint: disable=<ID>``
    comment on either side of a broken edge silences the finding.
    """

    rule_id: str = "GRAPH000"
    severity: Severity = Severity.ERROR
    fix_hint: str = ""

    def check_graph(self, graph) -> list[Finding]:
        """Return every violation over the contract *graph*."""
        raise NotImplementedError

    # -- helpers -------------------------------------------------------
    def site_finding(
        self, site, message: str, fix_hint: Optional[str] = None
    ) -> Finding:
        """A finding anchored at one contract :class:`~repro.lint.contracts.Site`."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=site.path,
            line=site.line,
            col=site.col,
            message=message,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
            source_line=site.raw,
        )


def endpoints(sites) -> str:
    """Render the far endpoints of an edge for a finding message."""
    return ", ".join(sorted({site.where() for site in sites}))


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def has_noqa(lines: Sequence[str], node: ast.AST, rule_id: str) -> bool:
    """True if the node's line carries ``# lint: disable=<rule_id>``."""
    line = getattr(node, "lineno", 0)
    if not (0 < line <= len(lines)):
        return False
    text = lines[line - 1]
    return f"lint: disable={rule_id}" in text or "lint: disable=all" in text

"""DET003 — no float arithmetic in value/supply accounting.

The §II firewall property is an *exact* conservation law: the circulating
supply of a subnet must never exceed what its parent locked, and every
burn/mint pair must cancel to the token.  Floats cannot express that —
``0.1 + 0.2 != 0.3``, large balances lose integer precision past 2**53,
and rounding direction becomes platform-dependent in corner cases.  The
value-accounting hot spots (``hierarchy/firewall.py``,
``hierarchy/crossmsg*``, ``hierarchy/gateway.py``) must compute in ints.

Flagged inside those files:

- arithmetic binops (``+ - * / // % **``) with a float literal operand;
- ``float(...)`` conversions;
- true division ``/`` anywhere (integer accounting divides with ``//``);
- augmented assignments (``+=`` …) with a float literal operand.

Timestamps (simulated seconds) are floats by design; they live outside
these files, so the blanket rule stays simple and loud.
"""

from __future__ import annotations

import ast
from typing import Sequence

from repro.lint.config import DET003_FILES, repro_relpath
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, has_noqa

_ARITH = (
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
)


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # -0.5 parses as UnaryOp(USub, Constant(0.5))
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


class Det003FloatAccounting(Rule):
    rule_id = "DET003"
    fix_hint = "account in integer token units; divide with // and round explicitly"

    def applies(self, path: str) -> bool:
        rel = repro_relpath(path)
        return rel is not None and rel in DET003_FILES

    def check(self, path: str, tree: ast.Module, lines: Sequence[str]) -> list[Finding]:
        findings: list[Finding] = []

        def flag(node: ast.AST, message: str) -> None:
            if not has_noqa(lines, node, self.rule_id):
                findings.append(self.finding(path, node, message, lines))

        for node in ast.walk(tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH):
                if isinstance(node.op, ast.Div):
                    flag(node, "true division yields float; use // for value math")
                elif _is_float_literal(node.left) or _is_float_literal(node.right):
                    flag(node, "float literal in value arithmetic")
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, _ARITH):
                if isinstance(node.op, ast.Div):
                    flag(node, "true division yields float; use //= for value math")
                elif _is_float_literal(node.value):
                    flag(node, "float literal in value arithmetic")
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
            ):
                flag(node, "float() conversion in value accounting")
        return findings

"""The rule registry: one module per rule id."""

from repro.lint.rules.base import Rule
from repro.lint.rules.det001_entropy import Det001Entropy
from repro.lint.rules.det002_setiter import Det002SetIteration
from repro.lint.rules.det003_float import Det003FloatAccounting
from repro.lint.rules.lay001_layering import Lay001Layering
from repro.lint.rules.sim001_scheduler import Sim001SchedulerMutation

#: Every rule the engine runs, in report order.
ALL_RULES: tuple = (
    Det001Entropy(),
    Det002SetIteration(),
    Det003FloatAccounting(),
    Lay001Layering(),
    Sim001SchedulerMutation(),
)

__all__ = ["Rule", "ALL_RULES"]

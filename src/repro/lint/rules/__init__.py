"""The rule registry: one module per rule id."""

from repro.lint.rules.base import GraphRule, Rule
from repro.lint.rules.det001_entropy import Det001Entropy
from repro.lint.rules.det002_setiter import Det002SetIteration
from repro.lint.rules.det003_float import Det003FloatAccounting
from repro.lint.rules.lay001_layering import Lay001Layering
from repro.lint.rules.met001_metric_catalog import Met001MetricCatalog
from repro.lint.rules.msg001_orphan_publish import Msg001OrphanPublish
from repro.lint.rules.msg002_dead_subscription import Msg002DeadSubscription
from repro.lint.rules.msg003_unserved_rpc import Msg003UnservedRpc
from repro.lint.rules.scn001_scenario_refs import Scn001ScenarioRefs
from repro.lint.rules.sim001_scheduler import Sim001SchedulerMutation

#: Every rule the engine runs, in report order.  Per-file rules run
#: during the file sweep; graph rules run once over the contract graph.
ALL_RULES: tuple = (
    Det001Entropy(),
    Det002SetIteration(),
    Det003FloatAccounting(),
    Lay001Layering(),
    Sim001SchedulerMutation(),
    Msg001OrphanPublish(),
    Msg002DeadSubscription(),
    Msg003UnservedRpc(),
    Met001MetricCatalog(),
    Scn001ScenarioRefs(),
)

__all__ = ["Rule", "GraphRule", "ALL_RULES"]

"""Shared configuration for the lint rules: layer map and rule scopes.

Paths are always handled *repro-relative*: ``src/repro/consensus/poa.py``
becomes ``consensus/poa.py``.  Rules scope themselves by these relative
paths, so the CLI works no matter which directory it is invoked from.
"""

from __future__ import annotations

from typing import Optional, Sequence

#: The import-layering contract, lowest layer first.  A module in package P
#: may import (at module scope) only packages with rank <= its own; equal
#: ranks are one architectural layer (e.g. chain/consensus) and may
#: interdepend.  Function-local lazy imports are the sanctioned escape
#: hatch for optional upward wiring (e.g. hierarchy's enable_telemetry)
#: and are exempt — they cannot create import cycles and keep the lower
#: layer free of the dependency unless a run opts in.
LAYERS: dict[str, int] = {
    # pure leaf libraries — no simulation, no protocol state
    "crypto": 0,
    "analysis": 0,
    "lint": 0,
    # the deterministic discrete-event substrate
    "sim": 1,
    # transport over the simulator; content-addressed storage primitives
    "net": 2,
    "storage": 2,
    # execution environment over storage
    "vm": 3,
    # one subnet's chain + consensus engines (one layer, interdependent)
    "chain": 4,
    "consensus": 4,
    # the generic validator node/network stack
    "runtime": 5,
    # hierarchical consensus proper (§II–§IV)
    "hierarchy": 6,
    # workload drivers and comparison baselines over full systems
    "workloads": 7,
    "baselines": 7,
    # observability over everything (digest-neutral by contract)
    "telemetry": 8,
    # adversarial campaigns drive full instrumented systems
    "scenario": 9,
}


def repro_relpath(path: str) -> Optional[str]:
    """Reduce *path* to its ``repro``-package-relative form.

    Returns ``None`` for files outside the ``repro`` package (the rules
    then decide whether they still apply — fixtures declare fake repro
    paths precisely so scoping stays testable).
    """
    parts = path.replace("\\", "/").split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            rel = "/".join(parts[i + 1:])
            return rel or None
    return None


def package_of(path: str) -> Optional[str]:
    """The top-level repro package a file belongs to (``None`` if unknown)."""
    rel = repro_relpath(path)
    if rel is None:
        return None
    first = rel.split("/", 1)[0]
    if first.endswith(".py"):
        return None  # a top-level module like repro/__init__.py
    return first


def in_packages(path: str, packages: Sequence[str]) -> bool:
    pkg = package_of(path)
    return pkg is not None and pkg in packages


# -- rule scopes -------------------------------------------------------

#: DET001 applies everywhere except the entropy sanctuaries: crypto/ (key
#: material is derived deterministically from labels there anyway, but the
#: package owns what randomness-like derivation exists) and sim/rng.py
#: (the one place seeded generators are minted).
DET001_EXEMPT_PREFIXES = ("crypto/", "sim/rng.py")

#: DET002 watches the packages whose iteration order feeds consensus-
#: critical decisions: block assembly, validation, cross-net routing, and
#: the state-root commitment (the bucketed root in storage/statetree.py
#: must hash bucket contents in a schedule-independent order).
DET002_PACKAGES = ("consensus", "chain", "hierarchy", "storage")

#: DET003 watches the value/supply accounting hot spots (§II firewall).
DET003_FILES = (
    "hierarchy/firewall.py",
    "hierarchy/crossmsg.py",
    "hierarchy/crossmsg_pool.py",
    "hierarchy/gateway.py",
)

#: SIM001 applies everywhere outside the simulator package itself.
SIM001_EXEMPT_PACKAGES = ("sim",)

"""Pass 1 of the whole-program analyzer: extract the contract graph.

The protocol's string-keyed seams — gossip topics, RPC endpoint names,
metric families, scheduler dispatch labels, duck-typed simulator slots,
auditor names and fault kinds — are matched by string equality across
packages, so a typo fails silently (a publish nobody receives, a metric
the exporter never declares).  This module walks every linted file once
and assembles a :class:`ContractGraph` of those interface points; the
MSG/MET/SCN rule family (pass 2) then checks the graph's edges.

Strings are resolved **dataflow-lite**: literals, f-strings (interpolated
pieces become ``*`` wildcards), ``+`` concatenation, conditional
expressions (both arms), local/module/self-attribute assignments, calls
to module-level *topic helpers* (single-``return`` functions like
``subnet_topic``), and calls to intra-class *metric helpers* (methods
that forward a parameter into a metric name, like ``Engine._metric``)
with the call-site argument substituted in.  Interpolated values are
assumed to never contain the pattern separator (``.`` for metrics) —
subnet paths use ``/`` and labels use ``:``, so this holds in-tree.
Sites whose key cannot be resolved to at least a prefix are recorded
under ``unresolved`` and exempt from checking.

Pattern language: ``*`` matches any run of characters; when a whole
dot-segment of a metric pattern is ``*`` it matches exactly one segment,
except as the final segment where it matches one or more (so a declared
``xnet.hop.*`` covers ``xnet.hop.submit.L2``).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

#: Duck-typed simulator observer slots (installed/read by attribute name).
SIMULATOR_SLOTS = ("span_tracer", "invariant_monitor", "round_tracer")

#: Methods that create/fetch a metric on a registry, and the family kind.
_METRIC_METHODS = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
    "timeseries": "series",
    "mark": "series",
}

#: The exporter's declared-families table (extracted by name, not import —
#: lint is layer 0 and must never import the telemetry package).
METRIC_CATALOG_NAME = "METRIC_CATALOG"

_MAX_ALTERNATES = 8  # cap on pattern fan-out per site (IfExp/var unions)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


# ----------------------------------------------------------------------
# Graph datatypes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Site:
    """One string-keyed interface point at one source location."""

    path: str  # normalized, forward slashes
    line: int  # 1-based
    col: int
    pattern: str  # resolved key ('*' = wildcard run)
    raw: str  # stripped source line (pragma + baseline matching)
    detail: str = ""  # site-specific annotation (metric kind, class …)

    def where(self) -> str:
        return f"{self.path}:{self.line}"


@dataclass
class ContractGraph:
    """Everything pass 1 extracted; pass 2 rules read this."""

    topics_published: list = field(default_factory=list)
    topics_subscribed: list = field(default_factory=list)
    rpc_served: list = field(default_factory=list)
    rpc_called: list = field(default_factory=list)
    metrics_emitted: list = field(default_factory=list)
    metric_catalog: list = field(default_factory=list)
    dispatch_labels: list = field(default_factory=list)
    slot_reads: list = field(default_factory=list)
    slot_writes: list = field(default_factory=list)
    auditors_declared: list = field(default_factory=list)
    auditors_referenced: list = field(default_factory=list)
    fault_kinds_declared: list = field(default_factory=list)
    fault_kinds_referenced: list = field(default_factory=list)
    unresolved: list = field(default_factory=list)
    files: int = 0

    def to_json(self) -> dict:
        """The ``--contracts`` dump: one JSON document for tooling."""

        def keyed(sites: Iterable[Site]) -> dict:
            out: dict = {}
            for site in sorted(sites, key=lambda s: (s.pattern, s.path, s.line)):
                entry = out.setdefault(site.pattern, [])
                entry.append(
                    {"at": site.where(), "detail": site.detail}
                    if site.detail
                    else {"at": site.where()}
                )
            return out

        return {
            "schema": "repro.contracts/v1",
            "files": self.files,
            "topics": {
                "publish": keyed(self.topics_published),
                "subscribe": keyed(self.topics_subscribed),
            },
            "rpc": {
                "serve": keyed(self.rpc_served),
                "call": keyed(self.rpc_called),
            },
            "metrics": {
                "emitted": keyed(self.metrics_emitted),
                "declared": keyed(self.metric_catalog),
            },
            "dispatch_labels": keyed(self.dispatch_labels),
            "slots": {
                "write": keyed(self.slot_writes),
                "read": keyed(self.slot_reads),
            },
            "auditors": {
                "declared": keyed(self.auditors_declared),
                "referenced": keyed(self.auditors_referenced),
            },
            "fault_kinds": {
                "declared": keyed(self.fault_kinds_declared),
                "referenced": keyed(self.fault_kinds_referenced),
            },
            "unresolved": [
                {"at": site.where(), "kind": site.detail}
                for site in sorted(self.unresolved, key=lambda s: (s.path, s.line))
            ],
        }


def site_suppressed(site: Site, rule_id: str) -> bool:
    """True if the site's own line carries ``# lint: disable=<rule_id>``."""
    return f"lint: disable={rule_id}" in site.raw or "lint: disable=all" in site.raw


# ----------------------------------------------------------------------
# Pattern matching
# ----------------------------------------------------------------------
def _chunk_ok(a: str, b: str) -> bool:
    """Two pattern chunks are compatible if either could name the other."""
    if a == b:
        return True
    if a == "*" or b == "*":
        return True
    if "*" in a and re.fullmatch(re.escape(a).replace("\\*", ".*"), b):
        return True
    if "*" in b and re.fullmatch(re.escape(b).replace("\\*", ".*"), a):
        return True
    return False


def patterns_compatible(a: str, b: str) -> bool:
    """Whole-string compatibility (topics, RPC methods): ``*`` = any run."""
    return _chunk_ok(a, b)


def metric_patterns_compatible(a: str, b: str) -> bool:
    """Dot-segmented compatibility for metric families.

    A ``*`` segment matches exactly one segment, except as the final
    segment of either pattern, where it greedily matches one or more —
    a declared ``xnet.hop.*`` family covers every depth below it.
    """
    sa, sb = a.split("."), b.split(".")

    def head_matches(short: Sequence[str], long: Sequence[str]) -> bool:
        return all(_chunk_ok(x, y) for x, y in zip(short, long))

    if sa[-1] == "*" and len(sb) >= len(sa) and head_matches(sa[:-1], sb):
        return True
    if sb[-1] == "*" and len(sa) >= len(sb) and head_matches(sb[:-1], sa):
        return True
    return len(sa) == len(sb) and head_matches(sa, sb)


def closest_patterns(pattern: str, pool: Iterable[str], limit: int = 3) -> list:
    """The most similar known patterns — candidate 'other endpoints' for a
    broken edge, surfaced in the finding so a typo is visible at a glance."""

    def prefix_len(other: str) -> int:
        n = 0
        for x, y in zip(pattern, other):
            if x != y:
                break
            n += 1
        return n

    ranked = sorted(set(pool), key=lambda p: (-prefix_len(p), p))
    return ranked[:limit]


# ----------------------------------------------------------------------
# String resolution (dataflow-lite)
# ----------------------------------------------------------------------
class _Resolver:
    """Resolve an expression to string patterns within one lexical context.

    ``env`` maps names to pattern lists (parameter bindings, class
    ``self.X`` attributes under the key ``"self.X"``, module constants);
    ``wild`` names resolve to ``*`` (unbound function parameters);
    ``helpers`` maps module-level topic-helper function names to their
    patterns; ``local_exprs`` maps local names to their (unresolved)
    assignment expressions, resolved on demand with a recursion guard.
    """

    def __init__(
        self,
        env: dict,
        wild: frozenset = frozenset(),
        helpers: Optional[dict] = None,
        local_exprs: Optional[dict] = None,
    ) -> None:
        self.env = env
        self.wild = wild
        self.helpers = helpers or {}
        self.local_exprs = local_exprs or {}
        self._resolving: set = set()

    def resolve(self, node: Optional[ast.AST]) -> Optional[list]:
        """Patterns for *node*, or None if nothing is known about it."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return [node.value]
        if isinstance(node, ast.JoinedStr):
            return self._concat(node.values)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return self._concat([node.left, node.right])
        if isinstance(node, ast.IfExp):
            return self._union(node.body, node.orelse)
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id == "self":
                got = self.env.get(f"self.{node.attr}")
                return list(got) if got is not None else None
            return None
        if isinstance(node, ast.FormattedValue):
            return self.resolve(node.value)
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name is not None and name in self.helpers:
                return list(self.helpers[name])
            return None
        return None

    def _lookup(self, name: str) -> Optional[list]:
        if name in self.env:
            return list(self.env[name])
        if name in self.local_exprs and name not in self._resolving:
            self._resolving.add(name)
            try:
                union: list = []
                for expr in self.local_exprs[name]:
                    got = self.resolve(expr)
                    union.extend(got if got is not None else ["*"])
                return _dedup(union)[:_MAX_ALTERNATES] if union else None
            finally:
                self._resolving.discard(name)
        if name in self.wild:
            return ["*"]
        return None

    def _concat(self, parts: Sequence[ast.AST]) -> Optional[list]:
        patterns = [""]
        any_known = False
        for part in parts:
            got = self.resolve(part)
            if got is None:
                piece = ["*"]
            else:
                piece = got
                any_known = any_known or any(p != "*" for p in got)
            patterns = [_squash(a + b) for a in patterns for b in piece]
            patterns = _dedup(patterns)[:_MAX_ALTERNATES]
        return patterns if any_known else None

    def _union(self, *nodes: ast.AST) -> Optional[list]:
        union: list = []
        any_known = False
        for node in nodes:
            got = self.resolve(node)
            if got is None:
                union.append("*")
            else:
                any_known = True
                union.extend(got)
        return _dedup(union)[:_MAX_ALTERNATES] if any_known else None


def _squash(pattern: str) -> str:
    """Collapse adjacent wildcards so concatenated products stay canonical."""
    while "**" in pattern:
        pattern = pattern.replace("**", "*")
    return pattern


def _dedup(items: Iterable[str]) -> list:
    seen: dict = {}
    for item in items:
        seen.setdefault(item, None)
    return list(seen)


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _receiver_ends(node: ast.AST, names: tuple) -> bool:
    dotted = _dotted(node)
    if dotted is None:
        return False
    return dotted.split(".")[-1] in names


def _arg(call: ast.Call, index: int, keyword: str) -> Optional[ast.AST]:
    """Positional-or-keyword argument lookup (None if absent/starred)."""
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if index < len(call.args) and not isinstance(call.args[index], ast.Starred):
        return call.args[index]
    return None


def _local_assignments(func: ast.AST) -> dict:
    """name -> [value exprs] for plain assignments in *func*'s own body,
    not descending into nested function definitions (those get their own
    scope pass that inherits this map)."""
    out: dict = {}
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_NODES + (ast.Lambda, ast.ClassDef)):
            continue
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.setdefault(target.id, []).append(node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                out.setdefault(node.target.id, []).append(node.value)
        stack.extend(ast.iter_child_nodes(node))
    return out


def _metric_call(node: ast.Call) -> Optional[tuple]:
    """(kind, name_expr) when *node* creates/fetches a metric, else None.

    Receiver heuristic: the dotted receiver ends in ``metrics`` or
    ``registry`` (``sim.metrics.counter(...)``, ``registry.gauge(...)``).
    Local aliases (``gauge = self.metrics.gauge``) are handled by the
    scope walker via its alias map.
    """
    if not isinstance(node.func, ast.Attribute):
        return None
    kind = _METRIC_METHODS.get(node.func.attr)
    if kind is None:
        return None
    if not _receiver_ends(node.func.value, ("metrics", "registry")):
        return None
    name_expr = _arg(node, 0, "name")
    return None if name_expr is None else (kind, name_expr)


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
class _Module:
    """Per-file extraction state shared between the two sweeps."""

    def __init__(self, path: str, tree: ast.Module, lines: Sequence[str]) -> None:
        self.path = path
        self.tree = tree
        self.lines = lines
        self.consts: dict = {}  # module-level NAME -> [patterns]

    def raw(self, node: ast.AST) -> str:
        line = getattr(node, "lineno", 0)
        if 0 < line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def site(self, node: ast.AST, pattern: str, detail: str = "") -> Site:
        return Site(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            pattern=pattern,
            raw=self.raw(node),
            detail=detail,
        )


def build_contract_graph(
    modules: Sequence[tuple],
    toml_files: Sequence[tuple] = (),
) -> ContractGraph:
    """Assemble the graph from parsed ``(path, tree, lines)`` modules plus
    raw ``(path, text)`` TOML documents (scenario specs)."""
    graph = ContractGraph(files=len(modules) + len(toml_files))
    mods = [_Module(path, tree, lines) for path, tree, lines in modules]

    # Sweep 1 (global): module constants, topic-helper functions,
    # auditor/fault class registries, metric catalogs, metric helpers.
    helpers: dict = {}
    metric_helpers: dict = {}  # method name -> [(kind, name_expr, params)]
    for mod in mods:
        for node in mod.tree.body:
            target = value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if target is not None and isinstance(target, ast.Name):
                got = _Resolver({}).resolve(value)
                if got is not None:
                    mod.consts[target.id] = got
                if target.id == METRIC_CATALOG_NAME and isinstance(value, ast.Dict):
                    _extract_catalog(mod, value, graph)
            elif isinstance(node, ast.FunctionDef):
                patterns = _helper_patterns(node)
                if patterns is not None:
                    helpers[node.name] = patterns
            elif isinstance(node, ast.ClassDef):
                _extract_class_registries(mod, node, graph)
                for name, entry in _metric_helper_methods(node).items():
                    metric_helpers.setdefault(name, []).append(entry)

    # Sweep 2: walk every scope for contract sites.
    for mod in mods:
        _extract_module_sites(mod, helpers, metric_helpers, graph)

    for path, text in toml_files:
        _extract_toml_sites(path, text, graph)

    return graph


def _helper_patterns(func: ast.FunctionDef) -> Optional[list]:
    """Patterns of a module-level string-returning helper, else None.

    ``def subnet_topic(subnet_id): return f"subnet:{subnet_id}"`` yields
    ``["subnet:*"]`` — parameters are wildcards here; every caller shares
    whatever key shape the helper produces.  Multi-return classifiers
    (``route_shape`` → topdown/bottomup/path) union every return value;
    a single unresolvable return degrades the union with ``*``.
    """
    params = frozenset(a.arg for a in func.args.args)
    resolver = _Resolver({}, wild=params)
    union: list = []
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_NODES + (ast.Lambda,)):
            continue
        if isinstance(node, ast.Return) and node.value is not None:
            got = resolver.resolve(node.value)
            union.extend(got if got is not None else ["*"])
        stack.extend(ast.iter_child_nodes(node))
    union = _dedup(union)[:_MAX_ALTERNATES]
    if not union or all(p == "*" for p in union):
        return None
    return union


def _extract_catalog(mod: _Module, node: ast.Dict, graph: ContractGraph) -> None:
    for key, value in zip(node.keys, node.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            continue
        kind = ""
        if (
            isinstance(value, (ast.Tuple, ast.List))
            and value.elts
            and isinstance(value.elts[0], ast.Constant)
        ):
            kind = str(value.elts[0].value)
        graph.metric_catalog.append(mod.site(key, key.value, detail=kind))


def _base_names(node: ast.ClassDef) -> list:
    return [b.split(".")[-1] for b in (_dotted(base) for base in node.bases) if b]


def _extract_class_registries(
    mod: _Module, node: ast.ClassDef, graph: ContractGraph
) -> None:
    """Auditor ``name`` / fault ``KIND`` class-attribute declarations.

    The registries are duck-shaped: any subclass of a ``*Auditor`` /
    ``*Fault`` base that sets the string attribute declares a key.  The
    root classes (``Auditor``/``Fault``) carry placeholder values and
    have no bases of their own, so they are naturally excluded.
    """
    bases = _base_names(node)
    is_auditor = any(b.endswith("Auditor") for b in bases)
    is_fault = any(b.endswith("Fault") for b in bases)
    if not (is_auditor or is_fault):
        return
    for stmt in node.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if not (
            isinstance(stmt.value, ast.Constant) and isinstance(stmt.value.value, str)
        ):
            continue
        if is_auditor and target.id == "name":
            graph.auditors_declared.append(
                mod.site(stmt, stmt.value.value, detail=node.name)
            )
        elif is_fault and target.id == "KIND":
            graph.fault_kinds_declared.append(
                mod.site(stmt, stmt.value.value, detail=node.name)
            )


def _metric_helper_methods(node: ast.ClassDef) -> dict:
    """Methods of *node* that forward a parameter into a metric name.

    Returns ``method name -> (kind, name_expr, param names)`` for methods
    like ``def _metric(self, name): ...counter(f"consensus.{x}.{name}")``
    so call sites — including in subclasses defined in other files — can
    substitute their literal argument and recover the real family.
    """
    out: dict = {}
    for method in [n for n in node.body if isinstance(n, ast.FunctionDef)]:
        params = [a.arg for a in method.args.args if a.arg != "self"]
        if not params:
            continue
        statements = [
            s
            for s in method.body
            if not (isinstance(s, ast.Expr) and isinstance(s.value, ast.Constant))
        ]
        if len(statements) > 3:
            # A do-everything method that happens to interpolate a param
            # (e.g. a violation recorder) is not a naming helper: its own
            # emits stay attributed in place, wildcarding the param.
            continue
        for call in ast.walk(method):
            if not isinstance(call, ast.Call):
                continue
            found = _metric_call(call)
            if found is None:
                continue
            kind, name_expr = found
            touched = {
                n.id for n in ast.walk(name_expr) if isinstance(n, ast.Name)
            } & set(params)
            if touched:
                out[method.name] = (kind, name_expr, tuple(params))
                break
    return out


def _class_self_env(node: ast.ClassDef, mod: _Module, helpers: dict) -> dict:
    """``self.X`` -> patterns, unioned over every method's assignments."""
    env: dict = {}
    for method in [n for n in node.body if isinstance(n, ast.FunctionDef)]:
        params = frozenset(a.arg for a in method.args.args if a.arg != "self")
        resolver = _Resolver(
            dict(mod.consts), params, helpers, _local_assignments(method)
        )
        for stmt in ast.walk(method):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    got = resolver.resolve(stmt.value)
                    if got is not None:
                        key = f"self.{target.attr}"
                        env[key] = _dedup(env.get(key, []) + got)[:_MAX_ALTERNATES]
    return env


def _extract_module_sites(
    mod: _Module, helpers: dict, metric_helpers: dict, graph: ContractGraph
) -> None:
    for node in mod.tree.body:
        if isinstance(node, ast.ClassDef):
            self_env = _class_self_env(node, mod, helpers)
            for method in [n for n in node.body if isinstance(n, _SCOPE_NODES)]:
                _extract_scope(
                    mod, method, helpers, metric_helpers, graph, self_env=self_env
                )
        elif isinstance(node, _SCOPE_NODES):
            _extract_scope(mod, node, helpers, metric_helpers, graph)
    # Module-scope statements (registry tables, module wiring).
    _extract_scope(mod, mod.tree, helpers, metric_helpers, graph, module_scope=True)


def _extract_scope(
    mod: _Module,
    scope: ast.AST,
    helpers: dict,
    metric_helpers: dict,
    graph: ContractGraph,
    self_env: Optional[dict] = None,
    inherited_locals: Optional[dict] = None,
    inherited_params: frozenset = frozenset(),
    module_scope: bool = False,
) -> None:
    """Record every contract site in one lexical scope.

    Nested function definitions recurse with the enclosing locals and
    parameters visible (closures), matching the flow-insensitive union
    model used everywhere else.
    """
    if isinstance(scope, _SCOPE_NODES):
        params = inherited_params | frozenset(
            a.arg for a in scope.args.args if a.arg != "self"
        )
    else:
        params = inherited_params
    locals_map = dict(inherited_locals or {})
    locals_map.update(_local_assignments(scope))
    env = dict(mod.consts)
    env.update(self_env or {})
    resolver = _Resolver(env, params, helpers, locals_map)

    # Local metric aliases: ``gauge = self.metrics.gauge``.
    aliases: dict = {}
    for name, exprs in locals_map.items():
        for expr in exprs:
            if (
                isinstance(expr, ast.Attribute)
                and expr.attr in _METRIC_METHODS
                and _receiver_ends(expr.value, ("metrics", "registry"))
            ):
                aliases[name] = _METRIC_METHODS[expr.attr]

    def record(
        bucket: list,
        node: ast.AST,
        expr: Optional[ast.AST],
        detail: str,
        unresolved_kind: str,
    ) -> None:
        got = resolver.resolve(expr)
        if got is None or all(p == "*" for p in got):
            graph.unresolved.append(mod.site(node, "*", detail=unresolved_kind))
            return
        for pattern in got:
            bucket.append(mod.site(node, pattern, detail=detail))

    def visit_call(node: ast.Call) -> None:
        func = node.func
        # getattr(sim, "round_tracer", None) is a slot read too.
        if (
            isinstance(func, ast.Name)
            and func.id == "getattr"
            and len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and node.args[1].value in SIMULATOR_SLOTS
        ):
            graph.slot_reads.append(mod.site(node, node.args[1].value))
            return
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if func.attr in ("publish", "subscribe") and _receiver_ends(
                receiver, ("gossip", "pubsub")
            ):
                bucket = (
                    graph.topics_published
                    if func.attr == "publish"
                    else graph.topics_subscribed
                )
                record(bucket, node, _arg(node, 1, "topic"), "", f"topic {func.attr}")
                return
            if func.attr == "expose" and _receiver_ends(receiver, ("rpc",)):
                record(graph.rpc_served, node, _arg(node, 1, "method"), "", "rpc expose")
                return
            if func.attr == "call" and _receiver_ends(receiver, ("rpc",)):
                record(graph.rpc_called, node, _arg(node, 2, "method"), "", "rpc call")
                return
            if func.attr in ("schedule", "schedule_at", "every") and _receiver_ends(
                receiver, ("sim", "simulator")
            ):
                label = _arg(node, 10_000, "label")  # keyword-only in practice
                if label is not None:
                    got = resolver.resolve(label)
                    for pattern in got or ["*"]:
                        graph.dispatch_labels.append(mod.site(node, pattern))
                return
            if (
                isinstance(receiver, ast.Name)
                and receiver.id == "self"
                and func.attr in metric_helpers
            ):
                record_helper_call(node, func.attr)
                return
            if func.attr == "violates":
                for arg in node.args:
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        graph.auditors_referenced.append(mod.site(arg, arg.value))
                tolerate = _arg(node, 10_000, "tolerate")
                if isinstance(tolerate, (ast.Tuple, ast.List)):
                    for elt in tolerate.elts:
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                            graph.auditors_referenced.append(mod.site(elt, elt.value))
                return
            if (
                func.attr == "parse"
                and _receiver_ends(receiver, ("Expectation",))
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                for name in _parse_violates(node.args[0].value):
                    graph.auditors_referenced.append(mod.site(node.args[0], name))
                return
        found = _metric_call(node)
        if found is not None:
            if _inside_own_helper(scope, node, metric_helpers):
                return  # a helper's own body; call sites carry the sites
            kind, name_expr = found
            record(graph.metrics_emitted, node, name_expr, kind, "metric")
            return
        if isinstance(func, ast.Name) and func.id in aliases:
            record(
                graph.metrics_emitted,
                node,
                _arg(node, 0, "name"),
                aliases[func.id],
                "metric",
            )
            return
        if _call_name(node) == "fault_from_spec" and node.args:
            spec = node.args[0]
            if isinstance(spec, ast.Dict):
                for key, value in zip(spec.keys, spec.values):
                    if (
                        isinstance(key, ast.Constant)
                        and key.value == "kind"
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, str)
                    ):
                        graph.fault_kinds_referenced.append(mod.site(value, value.value))

    def record_helper_call(node: ast.Call, method: str) -> None:
        """``self._metric("proposed")`` — substitute args into each known
        helper template (same-named helpers in unrelated classes union)."""
        positional = [a for a in node.args if not isinstance(a, ast.Starred)]
        recorded = False
        for kind, name_expr, hparams in metric_helpers[method]:
            bound: dict = {}
            for i, param in enumerate(hparams):
                value: Optional[ast.AST] = None
                if i < len(positional):
                    value = positional[i]
                for kw in node.keywords:
                    if kw.arg == param:
                        value = kw.value
                got = resolver.resolve(value)
                bound[param] = got if got is not None else ["*"]
            got = _Resolver(bound, frozenset(), helpers).resolve(name_expr)
            if got is not None and not all(p == "*" for p in got):
                for pattern in got:
                    graph.metrics_emitted.append(mod.site(node, pattern, detail=kind))
                recorded = True
        if not recorded:
            graph.unresolved.append(mod.site(node, "*", detail="metric"))

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                if not module_scope:
                    _extract_scope(
                        mod,
                        child,
                        helpers,
                        metric_helpers,
                        graph,
                        self_env=self_env,
                        inherited_locals=locals_map,
                        inherited_params=params,
                    )
                continue
            if isinstance(child, (ast.ClassDef, ast.Lambda)):
                continue  # nested classes/lambdas: out of scope for resolution
            if isinstance(child, ast.Call):
                visit_call(child)
            elif isinstance(child, ast.Attribute) and child.attr in SIMULATOR_SLOTS:
                if _receiver_ends(child.value, ("sim", "simulator")):
                    bucket = (
                        graph.slot_writes
                        if isinstance(child.ctx, ast.Store)
                        else graph.slot_reads
                    )
                    bucket.append(mod.site(child, child.attr))
            visit(child)

    visit(scope)


def _inside_own_helper(scope: ast.AST, call: ast.Call, metric_helpers: dict) -> bool:
    """True when *call* is the parameterised emit inside a helper's body —
    recording it would add an over-wide wildcard family next to the precise
    per-call-site families already substituted in."""
    if not isinstance(scope, ast.FunctionDef) or scope.name not in metric_helpers:
        return False
    found = _metric_call(call)
    if found is None:
        return False
    params = {a.arg for a in scope.args.args if a.arg != "self"}
    touched = {n.id for n in ast.walk(found[1]) if isinstance(n, ast.Name)} & params
    return bool(touched)


def _parse_violates(text: str) -> list:
    """Auditor names in an ``Expectation.parse``-shaped string."""
    match = re.fullmatch(r"\s*violates\((.*)\)\s*", text)
    if match is None:
        return []
    return [
        part.strip().strip("'\"") for part in match.group(1).split(",") if part.strip()
    ]


# ----------------------------------------------------------------------
# TOML scenario documents
# ----------------------------------------------------------------------
def _toml_line(text: str, needle: str) -> int:
    """Best-effort line of the first quoted occurrence of *needle*."""
    for i, line in enumerate(text.splitlines(), start=1):
        if f'"{needle}"' in line or f"'{needle}'" in line:
            return i
    return 1


def _toml_raw(text: str, line: int) -> str:
    lines = text.splitlines()
    if 0 < line <= len(lines):
        return lines[line - 1].strip()
    return ""


def _extract_toml_sites(path: str, text: str, graph: ContractGraph) -> None:
    """Auditor / fault-kind references in a TOML scenario document.

    Non-scenario TOML (pyproject etc.) is ignored; parse failures are
    skipped silently — the engine hands us every ``.toml`` it sees and
    only scenario-shaped documents participate in the contract graph.
    """
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python < 3.11
        return
    try:
        doc = tomllib.loads(text)
    except Exception:
        return
    meta = doc.get("scenario")
    faults = doc.get("faults")
    if not isinstance(meta, dict) and not isinstance(faults, list):
        return

    def add_ref(bucket: list, value: str) -> None:
        line = _toml_line(text, value)
        bucket.append(
            Site(path=path, line=line, col=0, pattern=value, raw=_toml_raw(text, line))
        )

    if isinstance(faults, list):
        for entry in faults:
            if isinstance(entry, dict) and isinstance(entry.get("kind"), str):
                add_ref(graph.fault_kinds_referenced, entry["kind"])
    if isinstance(meta, dict):
        expect = meta.get("expect")
        if isinstance(expect, str):
            for name in _parse_violates(expect):
                add_ref(graph.auditors_referenced, name)
        tolerate = meta.get("tolerate")
        if isinstance(tolerate, list):
            for name in tolerate:
                if isinstance(name, str):
                    add_ref(graph.auditors_referenced, name)


def iter_toml_files(paths: Sequence[str]) -> list:
    """Candidate TOML scenario files under *paths* (sorted, deduped)."""
    found: list = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".toml"):
                found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if name.endswith(".toml"):
                    found.append(os.path.join(dirpath, name))
    return found

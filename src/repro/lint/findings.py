"""Finding and severity types shared by every lint rule."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break determinism or the architecture outright and
    fail the run unless baselined; ``WARNING`` findings are suspicious
    constructs worth a look but tolerated (reported, never fatal).
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str  # e.g. "DET001"
    severity: Severity
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    col: int  # 0-based, as reported by ast
    message: str
    fix_hint: str = ""
    # The stripped source line, used for content-based baseline matching so
    # grandfathered entries survive unrelated line-number drift.
    source_line: str = field(default="", compare=False)

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col + 1}: {self.rule_id} [{self.severity}] {self.message}"
        if self.fix_hint:
            text += f"\n    hint: {self.fix_hint}"
        return text

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)

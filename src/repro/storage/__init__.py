"""Content-addressed and versioned storage substrate.

- :class:`~repro.storage.blockstore.Blockstore` — CID → object store, the
  backing store for chain data and for the CrossMsgMeta registry the content
  resolution protocol reads (§IV-C).
- :class:`~repro.storage.dag.DagStore` — linked objects (a lite IPLD): lets
  the resolution protocol push/pull "the whole DAG belonging to the CID".
- :class:`~repro.storage.statetree.StateTree` — versioned key/value state
  with O(1) snapshot/revert and O(1) ``fork()`` (structural sharing), used
  by the VM for transactional message application and by the runtime for
  per-block state branching.
- :class:`~repro.storage.backend.StateBackend` — the read-only floor a
  state tree bottoms out on; :class:`~repro.storage.backend.MemoryBackend`
  is the in-memory default, and an out-of-core implementation can slot in
  without touching the VM/chain/runtime layers.
- :class:`~repro.storage.datastore.Datastore` — a plain namespaced KV store
  for node-local bookkeeping.
"""

from repro.storage.backend import MemoryBackend, StateBackend, bucket_of
from repro.storage.blockstore import Blockstore
from repro.storage.datastore import Datastore
from repro.storage.statetree import StateTree
from repro.storage.dag import DagNode, DagStore

__all__ = [
    "Blockstore",
    "Datastore",
    "StateTree",
    "StateBackend",
    "MemoryBackend",
    "bucket_of",
    "DagNode",
    "DagStore",
]

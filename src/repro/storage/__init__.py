"""Content-addressed and versioned storage substrate.

- :class:`~repro.storage.blockstore.Blockstore` — CID → object store, the
  backing store for chain data and for the CrossMsgMeta registry the content
  resolution protocol reads (§IV-C).
- :class:`~repro.storage.dag.DagStore` — linked objects (a lite IPLD): lets
  the resolution protocol push/pull "the whole DAG belonging to the CID".
- :class:`~repro.storage.statetree.StateTree` — versioned key/value state
  with O(1) snapshot and revert, used by the VM for transactional message
  application.
- :class:`~repro.storage.datastore.Datastore` — a plain namespaced KV store
  for node-local bookkeeping.
"""

from repro.storage.blockstore import Blockstore
from repro.storage.datastore import Datastore
from repro.storage.statetree import StateTree
from repro.storage.dag import DagNode, DagStore

__all__ = ["Blockstore", "Datastore", "StateTree", "DagNode", "DagStore"]

"""Versioned state tree with snapshot/revert.

The VM wraps every message application in a snapshot: if the message aborts,
the tree reverts, leaving no partial writes (the transactional semantics the
paper's cross-msg failure handling relies on, §IV-B).

Implementation: a layered copy-on-write map.  A snapshot pushes a new empty
layer; writes always go to the top layer; reads walk layers top-down.
Commit folds the top layer into its parent; revert drops it.  ``root()``
hashes the flattened state, standing in for the state-root commitment a real
chain would store in block headers.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.crypto.cid import CID, cid_of

_DELETED = object()


class StateTree:
    """A layered key-value state with cheap snapshot/revert."""

    def __init__(self) -> None:
        self._layers: list[dict[str, Any]] = [{}]

    # ------------------------------------------------------------------
    # Reads / writes
    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        for layer in reversed(self._layers):
            if key in layer:
                value = layer[key]
                return default if value is _DELETED else value
        return default

    def has(self, key: str) -> bool:
        for layer in reversed(self._layers):
            if key in layer:
                return layer[key] is not _DELETED
        return False

    def set(self, key: str, value: Any) -> None:
        if value is _DELETED:
            raise ValueError("reserved sentinel cannot be stored")
        self._layers[-1][key] = value

    def delete(self, key: str) -> None:
        self._layers[-1][key] = _DELETED

    def keys(self, prefix: str = "") -> Iterator[str]:
        """Yield live keys (sorted) that start with *prefix*."""
        merged: dict[str, Any] = {}
        for layer in self._layers:
            merged.update(layer)
        for key in sorted(merged):
            if merged[key] is not _DELETED and key.startswith(prefix):
                yield key

    def items(self, prefix: str = "") -> Iterator[tuple[str, Any]]:
        for key in self.keys(prefix):
            yield key, self.get(key)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def snapshot(self) -> int:
        """Push a new write layer; returns a token for sanity checking."""
        self._layers.append({})
        return len(self._layers) - 1

    def commit(self, token: Optional[int] = None) -> None:
        """Fold the top layer into its parent."""
        self._check_token(token)
        top = self._layers.pop()
        self._layers[-1].update(top)

    def revert(self, token: Optional[int] = None) -> None:
        """Discard the top layer."""
        self._check_token(token)
        self._layers.pop()

    def _check_token(self, token: Optional[int]) -> None:
        if len(self._layers) == 1:
            raise RuntimeError("no open snapshot to close")
        if token is not None and token != len(self._layers) - 1:
            raise RuntimeError(
                f"snapshot token mismatch: expected {len(self._layers) - 1}, got {token}"
            )

    @property
    def depth(self) -> int:
        """Number of open snapshot layers (0 = no transaction in flight)."""
        return len(self._layers) - 1

    # ------------------------------------------------------------------
    # Commitments and copies
    # ------------------------------------------------------------------
    def flatten(self) -> dict[str, Any]:
        """Return the fully-merged live state as a plain dict."""
        merged: dict[str, Any] = {}
        for layer in self._layers:
            merged.update(layer)
        return {k: v for k, v in merged.items() if v is not _DELETED}

    def root(self) -> CID:
        """Content commitment over the full live state (the 'state root')."""
        flat = self.flatten()
        return cid_of({k: _commit_value(v) for k, v in flat.items()})

    def copy(self) -> "StateTree":
        """Deep-enough copy: a new tree seeded with the flattened state.

        Values are shared (they are treated as immutable records by the VM);
        layering history is not copied.
        """
        clone = StateTree()
        clone._layers = [dict(self.flatten())]
        return clone


def _commit_value(value: Any) -> Any:
    """Reduce a stored value to something canonically encodable."""
    if hasattr(value, "to_canonical"):
        return value.to_canonical()
    if isinstance(value, dict):
        return {k: _commit_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_commit_value(v) for v in value]
    return value

"""Versioned state tree with snapshot/revert, O(1) forks and an
incremental (bucketed) state-root commitment.

The VM wraps every message application in a snapshot: if the message aborts,
the tree reverts, leaving no partial writes (the transactional semantics the
paper's cross-msg failure handling relies on, §IV-B).

Structure — three read levels, newest wins:

    mutable layers   [{...}, {...}]     snapshot/commit/revert transactions
    frozen chain     F2 -> F1 -> None   immutable deltas shared across forks
    backend          StateBackend       read-only floor (in-memory default)

A snapshot pushes a new mutable layer; writes always go to the top layer;
commit folds the top layer into its parent; revert drops it.  ``fork()``
freezes the mutable base layer onto the frozen chain and hands out a clone
sharing that chain — O(delta-since-last-fork), independent of state size —
which is how block assembly/validation branch off a parent state without
copying it.  The chain is compacted once it grows past a bound, so lookup
depth and memory stay amortised O(1) per fork.

``root()`` is the state-root commitment block headers carry.  Keys are
sharded into ``n_buckets`` buckets (crc32, process-independent) with a
cached digest per bucket; writes mark their bucket dirty, and ``root()``
re-hashes only dirty buckets — O(writes × bucket-size) per block instead of
O(state).  Bucket membership and in-bucket ordering are pure functions of
the key, so the root is independent of write order, snapshot layering, fork
history, and event-schedule perturbations (the DET determinism contract).
"""

from __future__ import annotations

from hashlib import sha256
from typing import Any, Iterator, Optional

from repro.crypto.cid import CID, cid_of
from repro.storage.backend import EMPTY_BACKEND, StateBackend, bucket_of

_DELETED = object()

#: Frozen-chain length that triggers compaction on the next fork.  Bounds
#: read-path walk depth; the collapse cost is amortised over the forks that
#: grew the chain.
_MAX_CHAIN_DEPTH = 32

#: Default bucket count for the sharded root commitment.
DEFAULT_BUCKETS = 256


class _FrozenLayer:
    """One immutable delta in a tree's shared history.

    ``entries`` maps key -> value-or-tombstone for point reads; ``buckets``
    is the same data grouped by root bucket for incremental re-hashing.
    Never mutated after construction — forks share these by reference.
    """

    __slots__ = ("entries", "buckets", "parent", "depth")

    def __init__(
        self,
        entries: dict[str, Any],
        n_buckets: int,
        parent: Optional["_FrozenLayer"],
    ) -> None:
        self.entries = entries
        buckets: dict[int, dict[str, Any]] = {}
        for key, value in entries.items():
            buckets.setdefault(bucket_of(key, n_buckets), {})[key] = value
        self.buckets = buckets
        self.parent = parent
        self.depth = 1 + (parent.depth if parent is not None else 0)


class StateTree:
    """A layered key-value state with cheap snapshot/revert and O(1) forks."""

    def __init__(
        self,
        backend: Optional[StateBackend] = None,
        n_buckets: int = DEFAULT_BUCKETS,
    ) -> None:
        self._backend: StateBackend = backend if backend is not None else EMPTY_BACKEND
        self._frozen: Optional[_FrozenLayer] = None
        self._layers: list[dict[str, Any]] = [{}]
        self._n_buckets = n_buckets
        self._digests: Optional[list[bytes]] = None  # per-bucket, None until first root()
        self._dirty: set[int] = set()  # buckets written since digests were cached
        #: Buckets re-hashed by the most recent ``root()`` call (perf gauge).
        self.last_root_rehashed = 0

    # ------------------------------------------------------------------
    # Reads / writes
    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        for layer in reversed(self._layers):
            if key in layer:
                value = layer[key]
                return default if value is _DELETED else value
        frozen = self._frozen
        while frozen is not None:
            if key in frozen.entries:
                value = frozen.entries[key]
                return default if value is _DELETED else value
            frozen = frozen.parent
        return self._backend.get(key, default)

    def has(self, key: str) -> bool:
        sentinel = _DELETED
        for layer in reversed(self._layers):
            if key in layer:
                return layer[key] is not sentinel
        frozen = self._frozen
        while frozen is not None:
            if key in frozen.entries:
                return frozen.entries[key] is not sentinel
            frozen = frozen.parent
        return self._backend.has(key)

    def set(self, key: str, value: Any) -> None:
        if value is _DELETED:
            raise ValueError("reserved sentinel cannot be stored")
        self._layers[-1][key] = value
        if self._digests is not None:
            self._dirty.add(bucket_of(key, self._n_buckets))

    def delete(self, key: str) -> None:
        self._layers[-1][key] = _DELETED
        if self._digests is not None:
            self._dirty.add(bucket_of(key, self._n_buckets))

    def keys(self, prefix: str = "") -> Iterator[str]:
        """Yield live keys (sorted) that start with *prefix*."""
        merged = self._merged()
        for key in sorted(merged):
            if merged[key] is not _DELETED and key.startswith(prefix):
                yield key

    def items(self, prefix: str = "") -> Iterator[tuple[str, Any]]:
        merged = self._merged()
        for key in sorted(merged):
            value = merged[key]
            if value is not _DELETED and key.startswith(prefix):
                yield key, value

    def _merged(self) -> dict[str, Any]:
        """Full merged map including tombstones (newest wins)."""
        merged: dict[str, Any] = dict(self._backend.items())
        chain: list[_FrozenLayer] = []
        frozen = self._frozen
        while frozen is not None:
            chain.append(frozen)
            frozen = frozen.parent
        for layer in reversed(chain):  # oldest first
            merged.update(layer.entries)
        for mutable in self._layers:
            merged.update(mutable)
        return merged

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def snapshot(self) -> int:
        """Push a new write layer; returns a token for sanity checking."""
        self._layers.append({})
        return len(self._layers) - 1

    def commit(self, token: Optional[int] = None) -> None:
        """Fold the top layer into its parent."""
        self._check_token(token)
        top = self._layers.pop()
        self._layers[-1].update(top)

    def revert(self, token: Optional[int] = None) -> None:
        """Discard the top layer."""
        self._check_token(token)
        popped = self._layers.pop()
        if self._digests is not None:
            # The cached digests may already reflect the discarded writes
            # (root() inside an open snapshot cleared their dirty marks), so
            # the reverted keys' buckets must be re-marked.
            for key in popped:
                self._dirty.add(bucket_of(key, self._n_buckets))

    def _check_token(self, token: Optional[int]) -> None:
        if len(self._layers) == 1:
            raise RuntimeError("no open snapshot to close")
        if token is not None and token != len(self._layers) - 1:
            raise RuntimeError(
                f"snapshot token mismatch: expected {len(self._layers) - 1}, got {token}"
            )

    @property
    def depth(self) -> int:
        """Number of open snapshot layers (0 = no transaction in flight)."""
        return len(self._layers) - 1

    @property
    def chain_depth(self) -> int:
        """Length of the shared frozen-delta chain under the mutable layers."""
        return self._frozen.depth if self._frozen is not None else 0

    # ------------------------------------------------------------------
    # Commitments
    # ------------------------------------------------------------------
    def flatten(self) -> dict[str, Any]:
        """Return the fully-merged live state as a plain dict (O(state))."""
        merged = self._merged()
        return {k: v for k, v in merged.items() if v is not _DELETED}

    def root(self) -> CID:
        """Content commitment over the full live state (the 'state root').

        Incremental: only buckets written since the previous call are
        re-hashed; the rest reuse cached digests.  The commitment itself is
        a pure function of the live key/value content.
        """
        n = self._n_buckets
        if self._digests is None:
            dirty: Iterator[int] = iter(range(n))
            self._digests = [b""] * n
            self.last_root_rehashed = n
        else:
            dirty = iter(sorted(self._dirty))
            self.last_root_rehashed = len(self._dirty)
        overlay = self._overlay()
        digests = self._digests
        for bucket in dirty:
            digests[bucket] = self._bucket_digest(bucket, overlay)
        self._dirty.clear()
        # Combine per-bucket digests directly (fixed-width, fixed-count
        # bytes need no canonical framing): one sha-256 over 32*N bytes.
        return CID(sha256(b"".join(digests)).digest())

    def _overlay(self) -> dict[int, dict[str, Any]]:
        """Mutable layers merged and grouped by bucket (tombstones kept)."""
        merged: dict[str, Any] = {}
        for layer in self._layers:
            merged.update(layer)
        overlay: dict[int, dict[str, Any]] = {}
        for key, value in merged.items():
            overlay.setdefault(bucket_of(key, self._n_buckets), {})[key] = value
        return overlay

    def _bucket_digest(self, bucket: int, overlay: dict[int, dict[str, Any]]) -> bytes:
        content: dict[str, Any] = dict(self._backend.bucket_items(bucket, self._n_buckets))
        chain: list[_FrozenLayer] = []
        frozen = self._frozen
        while frozen is not None:
            chain.append(frozen)
            frozen = frozen.parent
        for layer in reversed(chain):  # oldest first
            entries = layer.buckets.get(bucket)
            if entries:
                content.update(entries)
        entries = overlay.get(bucket)
        if entries:
            content.update(entries)
        live = {
            key: _commit_value(content[key])
            for key in sorted(content)
            if content[key] is not _DELETED
        }
        return cid_of(live).digest

    # ------------------------------------------------------------------
    # Forks
    # ------------------------------------------------------------------
    def fork(self) -> "StateTree":
        """Branch off the current state in O(delta), sharing history.

        The mutable base layer is frozen onto the shared chain (an
        externally-invisible repacking: reads, depth and tokens are
        unchanged) and the clone points at the same chain with a fresh
        private write layer — no key/value is copied.  Cached bucket
        digests transfer to the clone, so its first ``root()`` after k
        writes re-hashes only k buckets.

        Forking with open snapshots leaves this tree's transaction stack
        untouched; the clone sees the merged view at depth 0 (matching the
        old ``copy()`` semantics the VM relies on).
        """
        if len(self._layers) == 1:
            base = self._layers[0]
            if base:
                self._frozen = _FrozenLayer(base, self._n_buckets, self._frozen)
                self._layers = [{}]
            if self._frozen is not None and self._frozen.depth > _MAX_CHAIN_DEPTH:
                self._frozen = self._compacted()
            shared = self._frozen
        else:
            merged: dict[str, Any] = {}
            for layer in self._layers:
                merged.update(layer)
            shared = _FrozenLayer(merged, self._n_buckets, self._frozen) if merged else self._frozen

        clone = StateTree(backend=self._backend, n_buckets=self._n_buckets)
        clone._frozen = shared
        if self._digests is not None:
            clone._digests = list(self._digests)
            clone._dirty = set(self._dirty)
        return clone

    def copy(self) -> "StateTree":
        """Alias for :meth:`fork` (kept for the original API)."""
        return self.fork()

    def _compacted(self) -> Optional[_FrozenLayer]:
        """Collapse the frozen chain into one layer (content-preserving).

        Tombstones survive only if they still mask a backend entry;
        otherwise they are dead weight and dropped.
        """
        merged: dict[str, Any] = {}
        chain: list[_FrozenLayer] = []
        frozen = self._frozen
        while frozen is not None:
            chain.append(frozen)
            frozen = frozen.parent
        for layer in reversed(chain):  # oldest first
            merged.update(layer.entries)
        backend = self._backend
        merged = {
            key: value
            for key, value in merged.items()
            if value is not _DELETED or backend.has(key)
        }
        if not merged:
            return None
        return _FrozenLayer(merged, self._n_buckets, None)


def _commit_value(value: Any) -> Any:
    """Reduce a stored value to something canonically encodable."""
    if hasattr(value, "to_canonical"):
        return value.to_canonical()
    if isinstance(value, dict):
        return {k: _commit_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_commit_value(v) for v in value]
    return value

"""A lite IPLD-style DAG store.

The content resolution protocol (§IV-C) pushes "the whole DAG belonging to
the CID" — a root object plus everything it links to.  :class:`DagNode`
wraps a value together with explicit links; :class:`DagStore` can close over
links to extract or ingest a full sub-DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.crypto.cid import CID, cid_of
from repro.storage.blockstore import Blockstore


@dataclass(frozen=True)
class DagNode:
    """A value plus the CIDs of the nodes it links to."""

    value: Any
    links: tuple = field(default_factory=tuple)

    def to_canonical(self):
        value = self.value.to_canonical() if hasattr(self.value, "to_canonical") else self.value
        return (value, tuple(link.to_canonical() for link in self.links))


class DagStore:
    """A blockstore specialised for :class:`DagNode` objects."""

    def __init__(self, blockstore: Blockstore = None) -> None:
        self.blocks = blockstore or Blockstore()

    def put(self, value: Any, links: Iterable[CID] = ()) -> CID:
        """Store *value* as a DAG node linking to *links*; return its CID."""
        node = DagNode(value=value, links=tuple(links))
        return self.blocks.put(node)

    def get(self, cid: CID) -> DagNode:
        node = self.blocks.get(cid)
        if not isinstance(node, DagNode):
            raise TypeError(f"{cid} is not a DagNode")
        return node

    def has(self, cid: CID) -> bool:
        return self.blocks.has(cid)

    def walk(self, root: CID) -> Iterator[tuple[CID, DagNode]]:
        """Depth-first traversal of the sub-DAG under *root*.

        Missing links raise :class:`KeyError` — the caller (the resolution
        protocol) treats that as "content not resolvable locally".
        """
        seen: set[CID] = set()
        stack = [root]
        while stack:
            cid = stack.pop()
            if cid in seen:
                continue
            seen.add(cid)
            node = self.get(cid)
            yield cid, node
            stack.extend(reversed(node.links))

    def extract(self, root: CID) -> dict[CID, DagNode]:
        """Return the full sub-DAG under *root* as a CID → node map."""
        return {cid: node for cid, node in self.walk(root)}

    def ingest(self, nodes: dict) -> list[CID]:
        """Insert a CID → node map (e.g. received from a push message).

        Each node's CID is recomputed and must match its claimed key —
        content addressing is what makes pushed DAGs trustless.
        """
        accepted = []
        for cid, node in nodes.items():
            if cid_of(node) != cid:
                raise ValueError(f"DAG node does not hash to its claimed CID {cid}")
            self.blocks.put(node)
            accepted.append(cid)
        return accepted

    def can_resolve(self, root: CID) -> bool:
        """True when the whole sub-DAG under *root* is locally present."""
        try:
            for _ in self.walk(root):
                pass
        except KeyError:
            return False
        return True

"""The pluggable state-storage substrate under :class:`StateTree`.

A :class:`StateBackend` is the *deepest* level of a state tree: the
read-only floor the copy-on-write layer chain bottoms out on.  The tree
never writes through to it — block execution writes land in private
layers, forks share frozen layers structurally — so one backend instance
may safely back any number of forks.

The contract exists so the in-memory default can later be swapped for an
out-of-core store (sqlite/LMDB-style, the ROADMAP's millions-of-accounts
item) without touching the VM, chain or runtime layers: an out-of-core
backend only has to answer point reads and (bucket-)scans.

Keys are strings; values are treated as immutable records (the VM-wide
convention — actors copy before mutating).  ``bucket_of`` is the single
source of truth for the key → bucket placement the incremental state-root
commitment uses; backends must group by the same function so per-bucket
scans line up with the tree's cached bucket digests.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Optional, Tuple
from zlib import crc32

try:  # Python 3.8+: typing.Protocol
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - very old interpreters only
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


_BUCKET_CACHE: Dict[str, int] = {}
_BUCKET_CACHE_N = 256  # placements cached for the default bucket count only


def bucket_of(key: str, n_buckets: int) -> int:
    """Deterministic key → bucket placement for the sharded state root.

    crc32 is stable across processes and platforms (unlike ``hash()``,
    which is salted per process).  Placements for the default bucket count
    are memoized: state keys repeat constantly (every balance update hits
    the same key) and the key space is bounded by the account space.
    """
    if n_buckets == _BUCKET_CACHE_N:
        bucket = _BUCKET_CACHE.get(key)
        if bucket is None:
            bucket = crc32(key.encode("utf-8")) % n_buckets
            _BUCKET_CACHE[key] = bucket
        return bucket
    return crc32(key.encode("utf-8")) % n_buckets


@runtime_checkable
class StateBackend(Protocol):
    """Read-only floor of a state tree (point reads + deterministic scans)."""

    def get(self, key: str, default: Any = None) -> Any:
        """Value stored at *key*, or *default*."""
        ...

    def has(self, key: str) -> bool:
        """True when *key* is stored."""
        ...

    def items(self) -> Iterator[Tuple[str, Any]]:
        """All (key, value) pairs, in sorted key order."""
        ...

    def bucket_items(self, bucket: int, n_buckets: int) -> Iterator[Tuple[str, Any]]:
        """The pairs whose :func:`bucket_of` placement equals *bucket*."""
        ...

    def __len__(self) -> int:
        ...


class MemoryBackend:
    """The in-memory :class:`StateBackend` (and the default: empty).

    Entries are bucket-grouped at construction so the incremental root's
    per-bucket scans cost O(bucket) rather than O(state).  The grouping is
    recomputed lazily per ``n_buckets`` requested, since the tree owns the
    bucket count.
    """

    def __init__(self, entries: Optional[Mapping[str, Any]] = None) -> None:
        self._entries: Dict[str, Any] = dict(entries or {})
        self._grouped: Optional[Tuple[int, Dict[int, Dict[str, Any]]]] = None

    def get(self, key: str, default: Any = None) -> Any:
        return self._entries.get(key, default)

    def has(self, key: str) -> bool:
        return key in self._entries

    def items(self) -> Iterator[Tuple[str, Any]]:
        for key in sorted(self._entries):
            yield key, self._entries[key]

    def bucket_items(self, bucket: int, n_buckets: int) -> Iterator[Tuple[str, Any]]:
        if not self._entries:
            return iter(())
        grouped = self._grouped
        if grouped is None or grouped[0] != n_buckets:
            by_bucket: Dict[int, Dict[str, Any]] = {}
            for key, value in self._entries.items():
                by_bucket.setdefault(bucket_of(key, n_buckets), {})[key] = value
            grouped = (n_buckets, by_bucket)
            self._grouped = grouped
        return iter(grouped[1].get(bucket, {}).items())

    def __len__(self) -> int:
        return len(self._entries)


#: Shared empty floor for trees constructed without an explicit backend.
#: Read-only by contract, so sharing one instance across all trees is safe.
EMPTY_BACKEND = MemoryBackend()


__all__ = ["StateBackend", "MemoryBackend", "EMPTY_BACKEND", "bucket_of"]

"""Namespaced key-value store for node-local bookkeeping."""

from __future__ import annotations

from typing import Any, Iterator, Optional


class Datastore:
    """A simple hierarchically-namespaced KV store.

    Keys are strings; ``namespace("a").put("b", v)`` stores under ``a/b``.
    """

    def __init__(self, prefix: str = "") -> None:
        self._prefix = prefix
        self._data: dict[str, Any] = {}

    def _key(self, key: str) -> str:
        return f"{self._prefix}/{key}" if self._prefix else key

    def put(self, key: str, value: Any) -> None:
        self._data[self._key(key)] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(self._key(key), default)

    def require(self, key: str) -> Any:
        """Like :meth:`get` but raises :class:`KeyError` when absent."""
        return self._data[self._key(key)]

    def has(self, key: str) -> bool:
        return self._key(key) in self._data

    def delete(self, key: str) -> bool:
        return self._data.pop(self._key(key), None) is not None

    def keys(self, prefix: str = "") -> Iterator[str]:
        """Yield stored keys (relative to this namespace) under *prefix*."""
        full = self._key(prefix)
        strip = len(self._prefix) + 1 if self._prefix else 0
        for key in sorted(self._data):
            if key.startswith(full):
                yield key[strip:]

    def namespace(self, name: str) -> "Datastore":
        """Return a view of this store under a child namespace."""
        child = Datastore(self._key(name))
        child._data = self._data
        return child

    def __len__(self) -> int:
        if not self._prefix:
            return len(self._data)
        return sum(1 for _ in self.keys())

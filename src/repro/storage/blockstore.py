"""Content-addressed block store (CID → value)."""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.crypto.cid import CID, cid_of


class Blockstore:
    """A CID-indexed store of immutable values.

    ``put`` computes the value's CID and stores it; fetching by CID returns
    exactly the stored value.  Because keys are content hashes, the store is
    naturally idempotent and deduplicating.
    """

    def __init__(self) -> None:
        self._blocks: dict[CID, Any] = {}

    def put(self, value: Any) -> CID:
        """Store *value* and return its CID."""
        cid = cid_of(value)
        self._blocks.setdefault(cid, value)
        return cid

    def put_many(self, values) -> list[CID]:
        return [self.put(v) for v in values]

    def get(self, cid: CID) -> Any:
        """Return the value for *cid*.  Raises :class:`KeyError` if absent."""
        return self._blocks[cid]

    def get_optional(self, cid: CID) -> Optional[Any]:
        return self._blocks.get(cid)

    def has(self, cid: CID) -> bool:
        return cid in self._blocks

    def delete(self, cid: CID) -> bool:
        """Remove *cid* if present; return whether anything was removed."""
        return self._blocks.pop(cid, None) is not None

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, cid: CID) -> bool:
        return cid in self._blocks

    def cids(self) -> Iterator[CID]:
        return iter(self._blocks)

"""The canonical scenario library (E12's campaign corpus).

Fourteen scenarios: nine honest-fault cases that must ride out their
faults ``safe``, and five adversarial cases that must trip *exactly* the
auditor their attack targets.  Every entry is a **factory** — faults are
stateful, so each run builds fresh objects.

Honest corpus:

- ``baseline_healthy`` — payments, no faults (the no-op control);
- ``partition_minority`` — a Tendermint minority is partitioned and
  healed; the 2f+1 quorum keeps committing, nobody forks;
- ``partition_parent_link`` — the whole subnet loses its parent for a
  while; the checkpoint fallback resubmits once the link heals;
- ``lossy_links`` / ``latency_spike`` — message loss inside the subnet,
  latency on the parent link; gossip redundancy and the submit fallback
  absorb both;
- ``round_desync`` — a harsher 50% loss window on a Tendermint subnet;
  the regression for the liveness stall fixed by f+1 round catch-up and
  validRound reproposal (the tendermint engine's lock-split deadlock);
- ``leader_crash`` — validator 0 crashes and restarts; PoA skips its
  slots;
- ``validator_churn`` — rolling crash/restart churn;
- ``crossmsg_spam`` — a cross-msg flood toward the rootnet (legitimate
  value flow, so the books stay balanced);
- ``equivocating_checkpointer`` — one validator signs conflicting
  checkpoints; below quorum the forgery never commits.

Adversarial corpus:

- ``checkpoint_withholding`` — every validator stops checkpointing, then
  a forged epoch-regressing checkpoint lands → ``checkpoint-chain``;
- ``forged_extraction`` — the §II compromised-subnet attack claims real
  value → ``supply`` (any checkpoint-chain fallout is tolerated);
- ``deep_reorg`` — a partitioned PoW miner forks past finality depth →
  ``finality``;
- ``engine_swap`` — a validator swaps in a rogue always-propose engine
  and finalizes a conflicting solo chain → ``finality``.
"""

from __future__ import annotations

from repro.scenario.errors import ScenarioError
from repro.scenario.faults import (
    ChurnFault,
    CrashFault,
    CrossMsgSpamFault,
    CheckpointWithholdFault,
    EngineSwapFault,
    EquivocationFault,
    ForgedCheckpointFault,
    LinkDegradeFault,
    PartitionFault,
    ReorgFault,
    Trigger,
)
from repro.scenario.spec import (
    Expectation,
    PaymentSpec,
    Scenario,
    SubnetSpec,
    TopologySpec,
    WorkloadSpec,
)

SUBNET = "/root/s0"


def _topology(**overrides) -> TopologySpec:
    subnet = SubnetSpec(**overrides)
    return TopologySpec(root_validators=3, subnets=[subnet])


def _payments(rate: float = 4.0) -> WorkloadSpec:
    return WorkloadSpec(payments=[PaymentSpec(subnet=SUBNET, rate=rate)])


# ----------------------------------------------------------------------
# Honest corpus — faults the system must ride out
# ----------------------------------------------------------------------
def baseline_healthy() -> Scenario:
    return Scenario(
        name="baseline-healthy",
        description="payments under no faults; the campaign control",
        topology=_topology(),
        workload=_payments(),
        faults=[],
        duration=20.0,
        expect=Expectation.safe(),
    )


def partition_minority() -> Scenario:
    return Scenario(
        name="partition-minority",
        description="a Tendermint minority partitions and heals; the "
        "quorum keeps committing",
        topology=_topology(validators=4, engine="tendermint"),
        workload=_payments(),
        faults=[
            PartitionFault(
                Trigger(at=4.0, duration=8.0), SUBNET, select="minority"
            ),
        ],
        duration=25.0,
        expect=Expectation.safe(),
    )


def partition_parent_link() -> Scenario:
    return Scenario(
        name="partition-parent-link",
        description="the subnet loses its parent link; checkpointing "
        "resumes via the submit fallback after heal",
        topology=_topology(),
        workload=_payments(),
        faults=[
            PartitionFault(
                Trigger(at=4.0, duration=6.0), SUBNET, isolate_subnet=True
            ),
        ],
        duration=30.0,
        expect=Expectation.safe(),
    )


def lossy_links() -> Scenario:
    return Scenario(
        name="lossy-links",
        description="15% message loss inside the subnet; the Tendermint "
        "quorum and gossip redundancy absorb it",
        topology=_topology(validators=4, engine="tendermint"),
        workload=_payments(),
        faults=[
            LinkDegradeFault(Trigger(at=3.0, duration=8.0), SUBNET, loss=0.15),
        ],
        duration=25.0,
        expect=Expectation.safe(),
    )


def round_desync() -> Scenario:
    """Regression for the lossy-links liveness stall (see ROADMAP).

    A 50% loss window over 12s used to wedge Tendermint through three
    distinct defects: a reentrancy clobber in the polka path (nodes stuck
    at round -1), missing f+1 round catch-up (validators phase-shifted
    into disjoint round cadences), and a round-0 lock split with no
    validRound reproposal (a permanent 2-2 prevote split).  With the
    fixes, the subnet must ride the window out and keep committing.
    """
    return Scenario(
        name="round-desync",
        description="50% message loss for 12s inside a Tendermint subnet; "
        "round catch-up and validRound reproposal must restore liveness",
        topology=_topology(validators=4, engine="tendermint"),
        workload=_payments(),
        faults=[
            LinkDegradeFault(Trigger(at=3.0, duration=12.0), SUBNET, loss=0.5),
        ],
        duration=40.0,
        expect=Expectation.safe(),
    )


def latency_spike() -> Scenario:
    return Scenario(
        name="latency-spike",
        description="+150ms on every subnet→parent link; checkpoints "
        "arrive late but intact",
        topology=_topology(),
        workload=_payments(),
        faults=[
            LinkDegradeFault(
                Trigger(at=3.0, duration=10.0), SUBNET,
                extra_latency=0.15, to_parent=True,
            ),
        ],
        duration=25.0,
        expect=Expectation.safe(),
    )


def leader_crash() -> Scenario:
    return Scenario(
        name="leader-crash",
        description="validator 0 crashes for 5s and restarts; PoA "
        "rotation skips its slots",
        topology=_topology(),
        workload=_payments(),
        faults=[
            CrashFault(Trigger(at=5.0, duration=5.0), SUBNET, select="leader"),
        ],
        duration=25.0,
        expect=Expectation.safe(),
    )


def validator_churn() -> Scenario:
    return Scenario(
        name="validator-churn",
        description="rolling churn: one validator down at a time",
        topology=_topology(validators=4),
        workload=_payments(),
        faults=[
            ChurnFault(
                Trigger(at=3.0, duration=15.0), SUBNET, period=5.0, downtime=2.0
            ),
        ],
        duration=25.0,
        expect=Expectation.safe(),
    )


def crossmsg_spam() -> Scenario:
    return Scenario(
        name="crossmsg-spam",
        description="a cross-msg flood toward the rootnet; value flows "
        "legitimately so the books stay balanced",
        topology=_topology(),
        workload=_payments(rate=2.0),
        faults=[
            CrossMsgSpamFault(
                Trigger(at=4.0, duration=8.0), SUBNET, to_subnet="/root",
                rate=10.0,
            ),
        ],
        duration=30.0,
        expect=Expectation.safe(),
    )


def equivocating_checkpointer() -> Scenario:
    return Scenario(
        name="equivocating-checkpointer",
        description="one validator signs conflicting checkpoints; below "
        "quorum the forgery never commits",
        topology=_topology(),
        workload=_payments(),
        faults=[
            EquivocationFault(Trigger(at=4.0, duration=10.0), SUBNET),
        ],
        duration=25.0,
        expect=Expectation.safe(),
    )


# ----------------------------------------------------------------------
# Adversarial corpus — each attack must trip exactly its auditor
# ----------------------------------------------------------------------
def checkpoint_withholding() -> Scenario:
    return Scenario(
        name="checkpoint-withholding",
        description="all validators stop checkpointing, then a forged "
        "epoch-regressing checkpoint lands at the parent SA",
        topology=_topology(),
        workload=_payments(),
        faults=[
            CheckpointWithholdFault(Trigger(at=2.0), SUBNET),  # permanent
            ForgedCheckpointFault(
                Trigger(at=8.0), SUBNET, value=0, break_epoch=True
            ),
        ],
        duration=25.0,
        expect=Expectation.violates("checkpoint-chain"),
    )


def forged_extraction() -> Scenario:
    return Scenario(
        name="forged-extraction",
        description="the §II compromised-subnet attack: a forged "
        "checkpoint claims bottom-up value nobody burned",
        topology=_topology(),
        workload=_payments(),
        faults=[
            ForgedCheckpointFault(Trigger(at=8.0), SUBNET, value=50_000),
        ],
        duration=25.0,
        expect=Expectation.violates("supply", tolerate=("checkpoint-chain",)),
    )


def deep_reorg() -> Scenario:
    return Scenario(
        name="deep-reorg",
        description="a partitioned PoW miner forks past finality depth; "
        "rejoining forces a deep reorg",
        topology=_topology(
            engine="pow", block_time=0.4, finality_depth=2, validators=3
        ),
        workload=_payments(rate=2.0),
        faults=[
            ReorgFault(Trigger(at=4.0, duration=12.0), SUBNET),
        ],
        duration=30.0,
        expect=Expectation.violates("finality"),
    )


def engine_swap() -> Scenario:
    return Scenario(
        name="engine-swap",
        description="a validator swaps in a rogue always-propose engine "
        "and finalizes a conflicting solo chain",
        topology=_topology(),
        workload=_payments(),
        faults=[
            EngineSwapFault(Trigger(at=4.0, duration=10.0), SUBNET),
        ],
        duration=25.0,
        expect=Expectation.violates("finality"),
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
CANONICAL = (
    baseline_healthy,
    partition_minority,
    partition_parent_link,
    lossy_links,
    round_desync,
    latency_spike,
    leader_crash,
    validator_churn,
    crossmsg_spam,
    equivocating_checkpointer,
    checkpoint_withholding,
    forged_extraction,
    deep_reorg,
    engine_swap,
)

#: The PR-gating subset: one honest control, one honest fault, two attacks.
SMOKE = (
    baseline_healthy,
    partition_minority,
    checkpoint_withholding,
    forged_extraction,
)

_BY_NAME = {factory().name: factory for factory in CANONICAL}


def names() -> list:
    return sorted(_BY_NAME)


def get(name: str):
    """The factory for a canonical scenario, by its scenario name."""
    factory = _BY_NAME.get(name)
    if factory is None:
        raise ScenarioError(
            f"unknown canonical scenario {name!r}; have {names()}"
        )
    return factory

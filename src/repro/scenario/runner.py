"""Run one scenario: build, load, inject, watch, classify.

:class:`ScenarioRunner` turns a declarative
:class:`~repro.scenario.spec.Scenario` into a live
:class:`~repro.hierarchy.network.HierarchicalSystem` with invariant
monitors and the flight recorder armed, drives the workload, arms the
fault schedule through a :class:`~repro.scenario.faults.FaultInjector`,
and classifies the outcome:

- ``clean`` — no invariant violation, no liveness stall;
- ``expected-violation`` — exactly the expected auditors (plus tolerated
  side effects) tripped, or the expected SLO degraded;
- ``unexpected-violation`` — an unexpected auditor tripped, or an
  expected one never fired;
- ``liveness-stall`` — the :class:`ProgressWatchdog` saw a subnet's head
  stop advancing for ``stall_after`` simulated seconds (and the scenario
  didn't declare that degradation).

Anything not ``clean``/``expected-violation`` dumps a postmortem bundle
tagged with the scenario and verdict, so triage starts from evidence.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional

from repro.hierarchy import HierarchicalSystem, SubnetConfig
from repro.scenario.faults import FaultInjector
from repro.scenario.spec import (
    OK_VERDICTS,
    VERDICT_CLEAN,
    VERDICT_EXPECTED,
    VERDICT_STALL,
    VERDICT_UNEXPECTED,
    Scenario,
)
from repro.workloads import CrossNetWorkload, PaymentWorkload

SPAM_FUNDS = 10**9


class ProgressWatchdog:
    """Liveness oracle: flags subnets whose best head stops advancing.

    Samples the *maximum* head height across each subnet's validators
    (so a single crashed or partitioned laggard is not a stall — the
    subnet as a whole must stop).  A stall is recorded once per
    stagnation episode; progress re-arms the watchdog.  Read-only and
    RNG-free, hence digest-neutral.
    """

    def __init__(
        self, system, stall_after: float = 10.0, interval: float = 1.0
    ) -> None:
        self.system = system
        self.stall_after = stall_after
        self.interval = interval
        self.stalls: list[dict] = []
        self._last: dict[str, tuple] = {}  # path -> (height, since)
        self._flagged: set[str] = set()
        self._stop = None

    def start(self) -> "ProgressWatchdog":
        if self._stop is None:
            self._stop = self.system.sim.every(
                self.interval, self._tick, label="scenario:watchdog",
                on_error="log",
            )
        return self

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None

    def stalled_subnets(self) -> list:
        return sorted({stall["subnet"] for stall in self.stalls})

    def _tick(self) -> None:
        now = self.system.sim.now
        for subnet in self.system.subnets:
            path = subnet.path
            height = max(
                node.head().height
                for node in self.system.nodes_by_subnet[subnet]
            )
            previous = self._last.get(path)
            if previous is None or height > previous[0]:
                self._last[path] = (height, now)
                self._flagged.discard(path)
                continue
            since = previous[1]
            if now - since >= self.stall_after and path not in self._flagged:
                self._flagged.add(path)
                stall = {"subnet": path, "height": height, "since": since, "time": now}
                diagnoser = getattr(self.system, "stall_diagnoser", None)
                if diagnoser is not None:
                    # Diagnose at flag time, while the wedged round state
                    # is live — by classification time the fault may have
                    # healed and the books moved on.  Pure read: the
                    # report cannot perturb the run.
                    stall["report"] = diagnoser.diagnose(path)
                self.stalls.append(stall)


@dataclass
class ScenarioOutcome:
    """One scenario run, classified."""

    scenario: str
    seed: int
    verdict: str
    expected: str
    notes: list = field(default_factory=list)
    violations: list = field(default_factory=list)  # InvariantViolation dicts
    tripped: list = field(default_factory=list)  # auditor names that fired
    stalls: list = field(default_factory=list)
    fault_log: list = field(default_factory=list)
    heights: dict = field(default_factory=dict)
    bundles: list = field(default_factory=list)  # postmortem paths
    stall_files: list = field(default_factory=list)  # repro.stall/v1 paths
    sim: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.verdict in OK_VERDICTS

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "verdict": self.verdict,
            "expected": self.expected,
            "ok": self.ok,
            "notes": list(self.notes),
            "tripped": list(self.tripped),
            "violations": list(self.violations),
            "stalls": list(self.stalls),
            "fault_log": list(self.fault_log),
            "heights": dict(self.heights),
            "bundles": list(self.bundles),
            "stall_files": list(self.stall_files),
            "sim": dict(self.sim),
        }


class ScenarioRunner:
    """Builds and runs one scenario under full instrumentation."""

    def __init__(
        self,
        scenario: Scenario,
        seed: Optional[int] = None,
        postmortem_dir: Optional[str] = None,
        monitors: bool = True,
        setup_timeout: float = 240.0,
    ) -> None:
        self.scenario = scenario
        self.seed = scenario.seed if seed is None else seed
        self.postmortem_dir = postmortem_dir
        self.monitors = monitors
        self.setup_timeout = setup_timeout
        self.system: Optional[HierarchicalSystem] = None
        self.workloads: list = []
        self.injector: Optional[FaultInjector] = None
        self.watchdog: Optional[ProgressWatchdog] = None

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self) -> HierarchicalSystem:
        """Construct the system, spawn the topology, fund the workload."""
        spec = self.scenario.topology
        system = HierarchicalSystem(
            seed=self.seed,
            latency=spec.latency,
            loss_rate=spec.loss_rate,
            root_validators=spec.root_validators,
            root_engine=spec.root_engine,
            root_block_time=spec.root_block_time,
            checkpoint_period=spec.checkpoint_period,
        ).start()
        if self.monitors:
            system.enable_telemetry(
                monitors=True, postmortem_dir=self.postmortem_dir,
                health_interval=1.0,
            )
        for subnet in spec.subnets:
            system.spawn_subnet(
                SubnetConfig(
                    name=subnet.name,
                    parent=subnet.parent,
                    validators=subnet.validators,
                    engine=subnet.engine,
                    block_time=subnet.block_time,
                    checkpoint_period=subnet.checkpoint_period,
                    finality_depth=subnet.finality_depth,
                ),
                timeout=self.setup_timeout,
            )
        self.system = system
        self._fund_workloads()
        return system

    def _fund_workloads(self) -> None:
        system = self.system
        for payment in self.scenario.workload.payments:
            wallets = [
                system.wallets.get(name) or system.create_wallet(name)
                for name in (
                    f"pay-{payment.subnet}-{i}" for i in range(payment.senders)
                )
            ]
            system.ensure_funds(
                payment.subnet,
                [(wallet.address, payment.funds) for wallet in wallets],
                timeout=self.setup_timeout,
            )
        for crossnet in self.scenario.workload.crossnet:
            wallet_name = f"xnet-{crossnet.from_subnet}"
            wallet = system.wallets.get(wallet_name) or system.create_wallet(wallet_name)
            system.ensure_funds(
                crossnet.from_subnet,
                [(wallet.address, crossnet.funds)],
                timeout=self.setup_timeout,
            )
        for fault in self.scenario.faults:
            if fault.KIND == "crossmsg-spam":
                name = f"spam-{fault.subnet}"
                wallet = system.wallets.get(name) or system.create_wallet(name)
                system.ensure_funds(
                    fault.subnet,
                    [(wallet.address, SPAM_FUNDS)],
                    timeout=self.setup_timeout,
                )

    def _start_workloads(self) -> None:
        system = self.system
        for payment in self.scenario.workload.payments:
            wallets = [
                system.wallets[f"pay-{payment.subnet}-{i}"]
                for i in range(payment.senders)
            ]
            self.workloads.append(
                PaymentWorkload(
                    system.sim,
                    system.nodes(payment.subnet),
                    wallets,
                    rate=payment.rate,
                    rng_scope=f"scenario-{self.scenario.name}-{payment.subnet}",
                ).start()
            )
        for crossnet in self.scenario.workload.crossnet:
            self.workloads.append(
                CrossNetWorkload(
                    system,
                    crossnet.from_subnet,
                    crossnet.to_subnet,
                    system.wallets[f"xnet-{crossnet.from_subnet}"],
                    rate=crossnet.rate,
                ).start()
            )

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self) -> ScenarioOutcome:
        scenario = self.scenario
        if self.system is None:
            self.build()
        system = self.system
        self._start_workloads()
        self.watchdog = ProgressWatchdog(
            system, stall_after=scenario.stall_after
        ).start()
        self.injector = FaultInjector(system, scenario.faults).arm()
        system.run_for(scenario.duration)
        for workload in self.workloads:
            workload.stop()
        self.injector.disarm()
        self.watchdog.stop()
        return self._classify()

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def _classify(self) -> ScenarioOutcome:
        scenario = self.scenario
        system = self.system
        monitor = system.invariant_monitor
        violations = list(monitor.violations) if monitor is not None else []
        tripped = sorted({violation.auditor for violation in violations})
        stalls = list(self.watchdog.stalls)
        expect = scenario.expect

        notes: list[str] = []
        verdict = VERDICT_CLEAN
        if expect.kind == "safe":
            if tripped:
                verdict = VERDICT_UNEXPECTED
                notes.append(
                    f"safe scenario tripped auditors: {', '.join(tripped)}"
                )
            elif stalls:
                verdict = VERDICT_STALL
                notes.append(
                    "progress stalled on "
                    + ", ".join(self.watchdog.stalled_subnets())
                )
        elif expect.kind == "violates":
            required = set(expect.auditors)
            allowed = required | set(expect.tolerate)
            extra = sorted(set(tripped) - allowed)
            missing = sorted(required - set(tripped))
            if extra:
                verdict = VERDICT_UNEXPECTED
                notes.append(f"unexpected auditors tripped: {', '.join(extra)}")
            if missing:
                verdict = VERDICT_UNEXPECTED
                notes.append(
                    f"expected violation never fired: {', '.join(missing)}"
                )
            if verdict == VERDICT_CLEAN:
                if stalls:
                    verdict = VERDICT_STALL
                    notes.append(
                        "progress stalled on "
                        + ", ".join(self.watchdog.stalled_subnets())
                    )
                else:
                    verdict = VERDICT_EXPECTED
                    notes.append(f"tripped as expected: {', '.join(tripped)}")
        else:  # degrades
            slo_subnet = expect.slo.split(":", 1)[1]
            degraded = slo_subnet in self.watchdog.stalled_subnets()
            if tripped:
                verdict = VERDICT_UNEXPECTED
                notes.append(
                    f"degradation scenario tripped auditors: {', '.join(tripped)}"
                )
            elif not degraded:
                verdict = VERDICT_UNEXPECTED
                notes.append(f"SLO {expect.slo!r} never degraded")
            else:
                verdict = VERDICT_EXPECTED
                notes.append(f"SLO {expect.slo!r} degraded as expected")

        recorder = system.flight_recorder
        if recorder is not None and verdict not in OK_VERDICTS:
            recorder.dump(
                reason=f"scenario:{scenario.name}:{verdict}",
                stall_reports=[
                    stall["report"] for stall in stalls if stall.get("report")
                ],
            )

        # On a liveness stall, also save each stall report standalone
        # (schema repro.stall/v1) — CI uploads these as artifacts and
        # `python -m repro.telemetry.postmortem stall_*.json` renders them.
        stall_files: list = []
        if verdict == VERDICT_STALL and self.postmortem_dir:
            os.makedirs(self.postmortem_dir, exist_ok=True)
            for stall in stalls:
                report = stall.get("report")
                if not report:
                    continue
                slug = report["subnet"].strip("/").replace("/", "_")
                path = os.path.join(
                    self.postmortem_dir,
                    f"stall_{scenario.name}_s{self.seed}_{slug}.json",
                )
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(report, handle, indent=2, default=str)
                stall_files.append(path)

        return ScenarioOutcome(
            scenario=scenario.name,
            seed=self.seed,
            verdict=verdict,
            expected=expect.render(),
            notes=notes,
            violations=[violation.as_dict() for violation in violations],
            tripped=tripped,
            stalls=stalls,
            fault_log=list(self.injector.log),
            heights={
                subnet.path: system.node(subnet).head().height
                for subnet in system.subnets
            },
            bundles=list(recorder.paths) if recorder is not None else [],
            stall_files=stall_files,
            sim={
                "now": system.sim.now,
                "seed": system.sim.seed,
                "events_executed": system.sim.events_executed,
            },
        )


def run_scenario(
    scenario: Scenario,
    seed: Optional[int] = None,
    postmortem_dir: Optional[str] = None,
) -> ScenarioOutcome:
    """Convenience: build, run and classify one scenario."""
    return ScenarioRunner(
        scenario, seed=seed, postmortem_dir=postmortem_dir
    ).run()

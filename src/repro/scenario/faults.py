"""Composable fault primitives and the injector that fires them.

Every fault targets an existing seam — the transport's partition/link
tables, :class:`~repro.runtime.node.NodeRuntime` lifecycle (stop/restart/
swap_engine), the runtime-mutable ``node.byzantine`` behaviour set, the
resolution/SA path (forged checkpoints), or the workload layer (spam) —
so injecting a fault never forks protocol code.

A fault is *armed* by the :class:`FaultInjector` according to its
:class:`Trigger` (a sim-time offset, or a predicate such as
``"height >= 30 in /root/s0"`` polled on a fixed cadence), *injected*
once, and — if the trigger carries a ``duration`` — *healed* that many
simulated seconds later, reverting whatever it changed.

Validator selectors resolve over the live topology at injection time:
``"all"``, ``"leader"`` (index 0), ``"minority"`` (largest strict
minority, taken from the tail so index 0 stays honest), ``"majority"``
(the complement), an explicit index, or a list of indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.consensus.base import ConsensusParams, make_engine
from repro.scenario.errors import ScenarioError


# ----------------------------------------------------------------------
# Triggers
# ----------------------------------------------------------------------
@dataclass
class Trigger:
    """When a fault fires and for how long it stays active.

    Exactly one of ``at`` (seconds after the scenario's fault clock
    starts) or ``when`` (predicate) must be set.  ``when`` is either a
    callable ``predicate(system) -> bool`` or a string in the mini-DSL:

    - ``"time >= 12.5"``
    - ``"height >= 30 in /root/s0"``
    - ``"window >= 2 in /root/s0"``  (checkpoint windows committed at the
      subnet's parent)

    ``duration=None`` means the fault is never healed.
    """

    at: Optional[float] = None
    when: Union[None, str, Callable] = None
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.at is None) == (self.when is None):
            raise ScenarioError("trigger needs exactly one of at= or when=")
        if self.at is not None and self.at < 0:
            raise ScenarioError("trigger offset cannot be negative")
        if self.duration is not None and self.duration <= 0:
            raise ScenarioError("trigger duration must be positive")

    def predicate(self, start_time: float) -> Optional[Callable]:
        """The armed predicate (``fn(system) -> bool``), or None for at=."""
        if self.when is None:
            return None
        if callable(self.when):
            return self.when
        return parse_predicate(self.when, start_time)

    def as_dict(self) -> dict:
        return {
            "at": self.at,
            "when": self.when if isinstance(self.when, str) else (
                None if self.when is None else "<callable>"
            ),
            "duration": self.duration,
        }


def parse_predicate(spec: str, start_time: float = 0.0) -> Callable:
    """Compile a trigger predicate string into ``fn(system) -> bool``."""
    words = spec.split()
    try:
        if words[0] == "time" and words[1] == ">=" and len(words) == 3:
            offset = float(words[2])
            return lambda system: system.sim.now >= start_time + offset
        if (
            len(words) == 5
            and words[0] in ("height", "window")
            and words[1] == ">="
            and words[3] == "in"
        ):
            bound = int(words[2])
            subnet = words[4]
            if words[0] == "height":
                return lambda system: system.node(subnet).head().height >= bound
            return lambda system: _committed_window(system, subnet) >= bound
    except (ValueError, IndexError):
        pass
    raise ScenarioError(
        f"cannot parse trigger predicate {spec!r}; expected "
        "'time >= T', 'height >= H in <subnet>' or 'window >= W in <subnet>'"
    )


def _committed_window(system, subnet) -> int:
    """The last checkpoint window the parent's SA recorded for *subnet*."""
    from repro.hierarchy.subnet_id import SubnetID

    subnet = SubnetID(subnet)
    if subnet.is_root:
        raise ScenarioError("the rootnet checkpoints to nothing")
    sa_addr = system.sa_address(subnet)
    return system.node(subnet.parent()).vm.state.get(
        f"actor/{sa_addr.raw}/last_ckpt_window", -1
    )


# ----------------------------------------------------------------------
# Target selectors
# ----------------------------------------------------------------------
def select_validators(system, subnet, select) -> list:
    """Resolve a validator selector over *subnet*'s live cluster.

    Returns node runtimes in deterministic (cluster) order.  ``minority``
    is the largest strict minority by count, taken from the *tail* of the
    cluster so the representative node 0 stays in the majority;
    ``majority`` is its complement; ``leader`` is node 0.
    """
    nodes = system.nodes(subnet)
    if select is None or select == "all":
        return list(nodes)
    if select == "leader":
        return [nodes[0]]
    if select == "minority":
        k = (len(nodes) - 1) // 2
        if k == 0:
            raise ScenarioError(f"{subnet} has no strict minority to select")
        return list(nodes[-k:])
    if select == "majority":
        k = (len(nodes) - 1) // 2
        return list(nodes[: len(nodes) - k])
    if isinstance(select, int):
        return [nodes[select]]
    if isinstance(select, (list, tuple)):
        return [nodes[i] for i in select]
    raise ScenarioError(f"unknown validator selector {select!r}")


# ----------------------------------------------------------------------
# Fault base
# ----------------------------------------------------------------------
class Fault:
    """One injectable fault: a trigger, a target, inject() and heal()."""

    KIND = "fault"

    def __init__(self, trigger: Trigger) -> None:
        self.trigger = trigger
        self.injected_at: Optional[float] = None
        self.healed_at: Optional[float] = None

    def inject(self, system) -> None:
        raise NotImplementedError

    def heal(self, system) -> None:
        """Revert the fault; default is irreversible (nothing to do)."""

    def describe(self) -> dict:
        detail = {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_")
            and key not in ("trigger", "injected_at", "healed_at")
            and isinstance(value, (str, int, float, bool, list, tuple, type(None)))
        }
        return {"kind": self.KIND, "trigger": self.trigger.as_dict(), **detail}

    # -- spec loading ---------------------------------------------------
    @classmethod
    def from_spec(cls, spec: dict) -> "Fault":
        """Build a fault from a plain dict (the TOML loader's contract)."""
        spec = dict(spec)
        trigger = Trigger(
            at=spec.pop("at", None),
            when=spec.pop("when", None),
            duration=spec.pop("duration", None),
        )
        return cls(trigger=trigger, **spec)


def fault_from_spec(spec: dict) -> Fault:
    """Dispatch a ``{"kind": ..., ...}`` dict to the right fault class."""
    spec = dict(spec)
    kind = spec.pop("kind", None)
    fault_class = FAULT_KINDS.get(kind)
    if fault_class is None:
        raise ScenarioError(
            f"unknown fault kind {kind!r}; have {sorted(FAULT_KINDS)}"
        )
    try:
        return fault_class.from_spec(spec)
    except TypeError as err:
        raise ScenarioError(f"bad {kind} fault spec {spec}: {err}") from None


# ----------------------------------------------------------------------
# Network faults — transport partition/link tables
# ----------------------------------------------------------------------
class PartitionFault(Fault):
    """Split a subnet (or the whole network) along validator groups.

    ``select`` names the group to split off within *subnet* (default
    ``"minority"``); ``isolate_subnet=True`` instead cuts the entire
    subnet off from the rest of the network (the parent-link partition).
    Healing removes exactly this partition.
    """

    KIND = "partition"

    def __init__(
        self,
        trigger: Trigger,
        subnet: str,
        select="minority",
        isolate_subnet: bool = False,
    ) -> None:
        super().__init__(trigger)
        self.subnet = subnet
        self.select = select
        self.isolate_subnet = isolate_subnet
        self._handle: Optional[int] = None

    def inject(self, system) -> None:
        transport = system.stack.transport
        if self.isolate_subnet:
            group = [node.node_id for node in system.nodes(self.subnet)]
        else:
            group = [
                node.node_id
                for node in select_validators(system, self.subnet, self.select)
            ]
        self._handle = transport.partition(group)

    def heal(self, system) -> None:
        if self._handle is not None:
            system.stack.transport.heal(self._handle)
            self._handle = None


class LinkDegradeFault(Fault):
    """Per-link loss and/or latency spike between two validator groups.

    Degrades every link between ``select`` and the rest of *subnet* (or
    between *subnet* and its parent's validators when
    ``to_parent=True``).  Healing zeroes the overrides.
    """

    KIND = "link-degrade"

    def __init__(
        self,
        trigger: Trigger,
        subnet: str,
        select="all",
        loss: float = 0.0,
        extra_latency: float = 0.0,
        to_parent: bool = False,
    ) -> None:
        super().__init__(trigger)
        self.subnet = subnet
        self.select = select
        self.loss = loss
        self.extra_latency = extra_latency
        self.to_parent = to_parent
        self._pairs: Optional[tuple] = None

    def _groups(self, system) -> tuple:
        selected = [
            node.node_id
            for node in select_validators(system, self.subnet, self.select)
        ]
        if self.to_parent:
            from repro.hierarchy.subnet_id import SubnetID

            parent = SubnetID(self.subnet).parent()
            others = [node.node_id for node in system.nodes(parent)]
        else:
            chosen = set(selected)
            others = [
                node.node_id
                for node in system.nodes(self.subnet)
                if node.node_id not in chosen
            ]
            if not others:  # degrading "all" means every intra-subnet link
                others = selected
        return selected, others

    def inject(self, system) -> None:
        selected, others = self._groups(system)
        system.stack.transport.set_link(
            selected, others, loss=self.loss, extra_latency=self.extra_latency
        )
        self._pairs = (tuple(selected), tuple(others))

    def heal(self, system) -> None:
        if self._pairs is not None:
            selected, others = self._pairs
            system.stack.transport.set_link(
                selected, others, loss=0.0, extra_latency=0.0
            )
            self._pairs = None


# ----------------------------------------------------------------------
# Validator lifecycle faults — NodeRuntime stop/restart
# ----------------------------------------------------------------------
class CrashFault(Fault):
    """Crash the selected validators; healing restarts them."""

    KIND = "crash"

    def __init__(self, trigger: Trigger, subnet: str, select="minority") -> None:
        super().__init__(trigger)
        self.subnet = subnet
        self.select = select
        self._crashed: list = []

    def inject(self, system) -> None:
        self._crashed = select_validators(system, self.subnet, self.select)
        for node in self._crashed:
            node.stop()

    def heal(self, system) -> None:
        for node in self._crashed:
            node.restart()
        self._crashed = []


class ChurnFault(Fault):
    """Rolling validator churn: crash/restart validators one at a time.

    Every ``period`` seconds the next validator (round-robin over the
    subnet, skipping index 0 so the cluster keeps a stable observer) is
    crashed for ``downtime`` seconds.  Healing stops the cycle and
    restarts anything still down.
    """

    KIND = "churn"

    def __init__(
        self,
        trigger: Trigger,
        subnet: str,
        period: float = 5.0,
        downtime: float = 2.0,
    ) -> None:
        super().__init__(trigger)
        self.subnet = subnet
        self.period = period
        self.downtime = downtime
        self._stop = None
        self._cursor = 0
        self._down: list = []

    def inject(self, system) -> None:
        self._system = system
        self._stop = system.sim.every(
            self.period, self._churn_one, label=f"fault:churn:{self.subnet}",
            on_error="log",
        )

    def _churn_one(self) -> None:
        nodes = self._system.nodes(self.subnet)
        if len(nodes) < 2:
            return
        victim = nodes[1 + self._cursor % (len(nodes) - 1)]
        self._cursor += 1
        victim.stop()
        self._down.append(victim)

        def come_back(node=victim):
            if node in self._down:
                self._down.remove(node)
                node.restart()

        self._system.sim.schedule(
            self.downtime, come_back, label=f"fault:churn-restart:{self.subnet}"
        )

    def heal(self, system) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None
        for node in list(self._down):
            node.restart()
        self._down = []


# ----------------------------------------------------------------------
# Byzantine behaviour faults — the runtime-mutable node.byzantine set
# ----------------------------------------------------------------------
class ByzantineFault(Fault):
    """Flip byzantine behaviour flags on the selected validators.

    ``behaviours`` come from the runtime's fault-injection vocabulary
    (``withhold_block``, ``withhold_vote``, ``equivocate_vote``,
    ``equivocate_checkpoint``, ``withhold_checkpoint_sig``,
    ``withhold_checkpoint``).  Healing removes exactly the flags this
    fault added (flags the node already had stay).
    """

    KIND = "byzantine"

    def __init__(self, trigger: Trigger, subnet: str, behaviours, select="all") -> None:
        super().__init__(trigger)
        self.subnet = subnet
        self.behaviours = tuple(
            (behaviours,) if isinstance(behaviours, str) else behaviours
        )
        self.select = select
        self._added: list = []

    def inject(self, system) -> None:
        self._added = []
        for node in select_validators(system, self.subnet, self.select):
            added = set(self.behaviours) - node.byzantine
            node.byzantine |= added
            self._added.append((node, added))

    def heal(self, system) -> None:
        for node, added in self._added:
            node.byzantine -= added
        self._added = []


class EquivocationFault(ByzantineFault):
    """Leader equivocation: the selected validators sign conflicting
    checkpoints for the same window (``equivocate_checkpoint``)."""

    KIND = "equivocation"

    def __init__(self, trigger: Trigger, subnet: str, select="leader") -> None:
        super().__init__(
            trigger, subnet, behaviours=("equivocate_checkpoint",), select=select
        )


class CheckpointWithholdFault(ByzantineFault):
    """Checkpoint withholding: the selected validators neither sign nor
    submit checkpoints, so the subnet stops anchoring to its parent."""

    KIND = "checkpoint-withhold"

    def __init__(self, trigger: Trigger, subnet: str, select="all") -> None:
        super().__init__(
            trigger,
            subnet,
            behaviours=("withhold_checkpoint_sig", "withhold_checkpoint"),
            select=select,
        )


# ----------------------------------------------------------------------
# Attack faults — forged checkpoints through the SA seam
# ----------------------------------------------------------------------
class ForgedCheckpointFault(Fault):
    """Mount the §II compromised-subnet attack at trigger time.

    Wraps :class:`~repro.hierarchy.firewall.CompromisedSubnet`: forges a
    checkpoint claiming *value* bottom-up to a fresh attacker address and
    submits it with genuine quorum signatures.  ``break_epoch`` keeps the
    prev-link genuine but regresses the epoch — the commit path never
    checks epoch monotonicity, so the forgery commits and the
    checkpoint-chain auditor catches it.  ``break_prev`` instead detaches
    the prev-link, which the SCA rejects outright (a probe that the
    defense holds).  Irreversible — there is nothing to heal.
    """

    KIND = "forged-checkpoint"

    def __init__(
        self,
        trigger: Trigger,
        subnet: str,
        value: int = 0,
        count: int = 1,
        break_prev: bool = False,
        break_epoch: bool = False,
    ) -> None:
        super().__init__(trigger)
        self.subnet = subnet
        self.value = value
        self.count = count
        self.break_prev = break_prev
        self.break_epoch = break_epoch

    def inject(self, system) -> None:
        from repro.crypto.keys import KeyPair
        from repro.hierarchy.firewall import CompromisedSubnet

        attacker = KeyPair(("scenario-attacker", self.subnet)).address
        CompromisedSubnet(system, self.subnet).forge_extraction(
            attacker,
            self.value,
            count=self.count,
            break_prev=self.break_prev,
            break_epoch=self.break_epoch,
        )


# ----------------------------------------------------------------------
# Long-range reorg — partition a fork-capable subnet past finality
# ----------------------------------------------------------------------
class ReorgFault(Fault):
    """Trigger a long-range reorg on a fork-capable (e.g. PoW) subnet.

    Partitions the selected minority so both sides keep mining; healing
    rejoins them and the shorter branch reorgs onto the longer one.  Hold
    the partition longer than ``finality_depth × block_time`` and the
    reorg is *deep* — the finality auditor's violation.
    """

    KIND = "reorg"

    def __init__(self, trigger: Trigger, subnet: str, select="minority") -> None:
        super().__init__(trigger)
        self.subnet = subnet
        self.select = select
        self._handle: Optional[int] = None

    def inject(self, system) -> None:
        group = [
            node.node_id
            for node in select_validators(system, self.subnet, self.select)
        ]
        self._handle = system.stack.transport.partition(group)

    def heal(self, system) -> None:
        if self._handle is not None:
            system.stack.transport.heal(self._handle)
            self._handle = None


# ----------------------------------------------------------------------
# Cross-msg spam — the workload seam
# ----------------------------------------------------------------------
class CrossMsgSpamFault(Fault):
    """Open-loop cross-net spam from *subnet* toward *to_subnet*.

    Submits ``rate`` cross-msgs per second from a pre-funded scenario
    wallet (the runner funds ``spam`` wallets when this fault is present).
    Healing stops the flood; in-flight messages still drain.
    """

    KIND = "crossmsg-spam"

    def __init__(
        self,
        trigger: Trigger,
        subnet: str,
        to_subnet: str = "/root",
        rate: float = 20.0,
        value: int = 1,
    ) -> None:
        super().__init__(trigger)
        self.subnet = subnet
        self.to_subnet = to_subnet
        self.rate = rate
        self.value = value
        self._stop = None

    def inject(self, system) -> None:
        from repro.crypto.keys import KeyPair
        from repro.hierarchy.wallet import Wallet

        wallet = system.wallets.get(f"spam-{self.subnet}")
        if wallet is None:
            raise ScenarioError(
                f"crossmsg-spam needs a funded 'spam-{self.subnet}' wallet "
                "(the scenario runner provisions it)"
            )
        sink = Wallet(KeyPair(("scenario-spam-sink", self.subnet))).address

        def spam_one():
            system.cross_send(
                wallet, self.subnet, self.to_subnet, sink, self.value
            )

        self._stop = system.sim.every(
            1.0 / self.rate, spam_one, label=f"fault:spam:{self.subnet}",
            on_error="log",
        )

    def heal(self, system) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None


# ----------------------------------------------------------------------
# Byzantine engine swap — the make_engine plug point
# ----------------------------------------------------------------------
class RogueProposerEngine:
    """A PoA engine that proposes in *every* slot, leadership be damned.

    Honest validators reject its blocks (wrong miner for the slot), so a
    swapped node floods the subnet with invalid proposals — the byzantine
    engine-swap fault.  Built through :func:`make_engine` against the
    ``poa`` registration, then rewired: composition keeps this out of the
    consensus package (no rogue engine in the production registry).
    """

    def __init__(self, sim, node, validators, params) -> None:
        base = ConsensusParams(**{**vars(params), "engine": "poa"})
        self._engine = make_engine(sim, node, validators, base)
        # Every slot is "ours": propose regardless of the rotation.
        self._engine.leader_for_slot = lambda slot: validators.by_node(node.node_id)

    @property
    def running(self) -> bool:
        return self._engine.running

    @property
    def params(self):
        return self._engine.params

    def start(self) -> None:
        self._engine.start()

    def stop(self) -> None:
        self._engine.stop()

    def handle(self, kind, payload, sender) -> None:
        self._engine.handle(kind, payload, sender)


class EngineSwapFault(Fault):
    """Swap the selected validators' consensus engine for a rogue one.

    Uses :meth:`NodeRuntime.swap_engine` — the same plug point
    :func:`make_engine` fills at construction.  Healing swaps the
    original engines back in.
    """

    KIND = "engine-swap"

    def __init__(self, trigger: Trigger, subnet: str, select="minority") -> None:
        super().__init__(trigger)
        self.subnet = subnet
        self.select = select
        self._originals: list = []

    def inject(self, system) -> None:
        self._originals = []
        for node in select_validators(system, self.subnet, self.select):
            old = node.swap_engine(RogueProposerEngine)
            self._originals.append((node, old))

    def heal(self, system) -> None:
        for node, old in self._originals:
            was_running = node.engine.running
            node.engine.stop()
            node.engine = old
            if was_running:
                old.start()
        self._originals = []


FAULT_KINDS: dict[str, type] = {
    fault_class.KIND: fault_class
    for fault_class in (
        PartitionFault,
        LinkDegradeFault,
        CrashFault,
        ChurnFault,
        ByzantineFault,
        EquivocationFault,
        CheckpointWithholdFault,
        ForgedCheckpointFault,
        ReorgFault,
        CrossMsgSpamFault,
        EngineSwapFault,
    )
}


# ----------------------------------------------------------------------
# The injector
# ----------------------------------------------------------------------
class FaultInjector:
    """Arms a fault schedule against a running system.

    ``at`` triggers become simulator events relative to the injector's
    start time; ``when`` predicates are polled every ``poll_interval``
    simulated seconds.  Each fault fires once; its optional heal is
    scheduled ``duration`` later.  ``log`` records (time, event, fault
    description) tuples for the campaign report.
    """

    def __init__(self, system, faults, poll_interval: float = 0.25) -> None:
        self.system = system
        self.faults = list(faults)
        self.poll_interval = poll_interval
        self.log: list[dict] = []
        self.start_time: Optional[float] = None
        self._pending: list = []  # (fault, predicate) awaiting their when=
        self._stop_poll = None

    def arm(self) -> "FaultInjector":
        sim = self.system.sim
        self.start_time = sim.now
        for fault in self.faults:
            predicate = fault.trigger.predicate(self.start_time)
            if predicate is None:
                sim.schedule(
                    fault.trigger.at, self._fire, fault,
                    label=f"fault:{fault.KIND}",
                )
            else:
                self._pending.append((fault, predicate))
        if self._pending:
            self._stop_poll = sim.every(
                self.poll_interval, self._poll, label="fault:poll", on_error="log"
            )
        return self

    def disarm(self) -> None:
        """Stop polling and heal every still-active revertible fault."""
        if self._stop_poll is not None:
            self._stop_poll()
            self._stop_poll = None
        self._pending = []
        for fault in self.faults:
            if fault.injected_at is not None and fault.healed_at is None:
                if fault.trigger.duration is not None:
                    self._heal(fault)

    def _poll(self) -> None:
        fired = [
            (fault, predicate)
            for fault, predicate in self._pending
            if predicate(self.system)
        ]
        for fault, predicate in fired:
            self._pending.remove((fault, predicate))
            self._fire(fault)
        if not self._pending and self._stop_poll is not None:
            self._stop_poll()
            self._stop_poll = None

    def _fire(self, fault: Fault) -> None:
        sim = self.system.sim
        fault.inject(self.system)
        fault.injected_at = sim.now
        self.log.append({"time": sim.now, "event": "inject", **fault.describe()})
        if fault.trigger.duration is not None:
            sim.schedule(
                fault.trigger.duration, self._heal, fault,
                label=f"fault:heal:{fault.KIND}",
            )

    def _heal(self, fault: Fault) -> None:
        if fault.healed_at is not None:
            return
        sim = self.system.sim
        fault.heal(self.system)
        fault.healed_at = sim.now
        self.log.append({"time": sim.now, "event": "heal", **fault.describe()})

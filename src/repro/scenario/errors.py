"""Scenario-engine exceptions."""

from __future__ import annotations


class ScenarioError(ValueError):
    """A malformed scenario/fault spec or an unusable selector."""

"""``python -m repro.scenario`` — run a campaign over the canonical library.

The CI entry point: picks scenarios (``--scenarios all|smoke|name,...``),
runs them across ``--seeds``, writes ``CAMPAIGN_<name>.json`` (plus
postmortem bundles for anything unexpected) and exits non-zero when any
run's verdict is not ``clean``/``expected-violation``.
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.scenario import library
from repro.scenario.campaign import CampaignRunner


def _pick_scenarios(spec: str) -> list:
    if spec == "all":
        return list(library.CANONICAL)
    if spec == "smoke":
        return list(library.SMOKE)
    return [library.get(name.strip()) for name in spec.split(",") if name.strip()]


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenario",
        description="Run an adversarial scenario campaign.",
    )
    parser.add_argument(
        "--scenarios", default="all",
        help="'all', 'smoke', or comma-separated canonical names "
        f"(have: {', '.join(library.names())})",
    )
    parser.add_argument(
        "--seeds", default="1", help="comma-separated seed list (default: 1)"
    )
    parser.add_argument("--name", default=None, help="campaign name (for the JSON)")
    parser.add_argument("--out", default=".", help="directory for CAMPAIGN_<name>.json")
    parser.add_argument(
        "--postmortem-dir", default=None,
        help="directory for postmortem bundles (default: $REPRO_POSTMORTEM_DIR)",
    )
    parser.add_argument(
        "--randomize", action="store_true",
        help="jitter fault trigger offsets/durations per (scenario, seed)",
    )
    parser.add_argument(
        "--jitter", type=float, default=0.2,
        help="relative jitter spread for --randomize (default: 0.2)",
    )
    args = parser.parse_args(argv)

    scenarios = _pick_scenarios(args.scenarios)
    seeds = [int(seed) for seed in args.seeds.split(",") if seed.strip()]
    name = args.name or (
        args.scenarios if args.scenarios in ("all", "smoke") else "custom"
    )
    runner = CampaignRunner(
        name=name,
        scenarios=scenarios,
        seeds=seeds,
        out_dir=args.out,
        postmortem_dir=args.postmortem_dir,
        randomize=args.randomize,
        time_jitter=args.jitter,
        progress=print,
    )
    report = runner.run()
    print(f"\nwrote {runner.path}")
    print(f"summary: {report['summary']}  ok={report['ok']}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())

"""Seeded campaign runner: scenario × seed grids with optional jitter.

A campaign takes scenario *factories* (callables returning a fresh
:class:`~repro.scenario.spec.Scenario` — faults are stateful, so every
run gets its own objects), runs each across a seed list, optionally
randomizes the fault schedule (trigger offsets and durations jittered by
a per-``(campaign, scenario, seed)`` RNG — deterministic across
processes), and writes ``CAMPAIGN_<name>.json`` for
``python -m repro.scenario.report`` to triage.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Callable, Optional, Sequence, Union

from repro.scenario.errors import ScenarioError
from repro.scenario.runner import ScenarioOutcome, ScenarioRunner
from repro.scenario.spec import OK_VERDICTS, Scenario

CAMPAIGN_SCHEMA = "repro.campaign/v1"


def _jitter_schedule(scenario: Scenario, rng: random.Random, spread: float) -> None:
    """Randomize trigger offsets/durations in place by ±``spread``.

    Only ``at=`` offsets and durations move — predicate triggers already
    depend on run dynamics.  The jitter RNG is seeded from the campaign,
    scenario and seed names, so a randomized campaign replays bit-for-bit.
    """
    for fault in scenario.faults:
        trigger = fault.trigger
        if trigger.at is not None:
            trigger.at = max(0.0, trigger.at * (1.0 + spread * rng.uniform(-1, 1)))
        if trigger.duration is not None:
            trigger.duration = max(
                0.05, trigger.duration * (1.0 + spread * rng.uniform(-1, 1))
            )


class CampaignRunner:
    """Run a list of scenarios across seeds and classify every outcome."""

    def __init__(
        self,
        name: str,
        scenarios: Sequence[Union[Scenario, Callable[[], Scenario]]],
        seeds: Sequence[int] = (1,),
        out_dir: Optional[str] = None,
        postmortem_dir: Optional[str] = None,
        randomize: bool = False,
        time_jitter: float = 0.2,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        if not name:
            raise ScenarioError("campaign needs a name")
        self.name = name
        self.scenarios = list(scenarios)
        self.seeds = list(seeds)
        self.out_dir = out_dir or "."
        self.postmortem_dir = postmortem_dir
        self.randomize = randomize
        self.time_jitter = time_jitter
        self.progress = progress or (lambda message: None)
        self.outcomes: list[ScenarioOutcome] = []
        self._wall_seconds = 0.0

    # ------------------------------------------------------------------
    def _materialize(self, entry, seed: int) -> Scenario:
        scenario = entry() if callable(entry) else entry
        if not isinstance(scenario, Scenario):
            raise ScenarioError(f"not a Scenario (or factory of one): {entry!r}")
        if callable(entry):
            pass  # fresh object, safe to mutate
        elif len(self.seeds) > 1 or self.randomize:
            raise ScenarioError(
                f"scenario {scenario.name!r} must be a factory (faults are "
                "stateful) when running multiple seeds or randomizing"
            )
        if self.randomize:
            rng = random.Random(f"{self.name}:{scenario.name}:{seed}")
            _jitter_schedule(scenario, rng, self.time_jitter)
        return scenario

    def run(self) -> dict:
        """Run the grid; returns (and writes) the campaign report dict."""
        started = time.perf_counter()
        for entry in self.scenarios:
            for seed in self.seeds:
                scenario = self._materialize(entry, seed)
                self.progress(f"run {scenario.name} seed={seed}")
                outcome = ScenarioRunner(
                    scenario, seed=seed, postmortem_dir=self.postmortem_dir
                ).run()
                self.outcomes.append(outcome)
                self.progress(
                    f"  -> {outcome.verdict}"
                    + (f" ({'; '.join(outcome.notes)})" if outcome.notes else "")
                )
        self._wall_seconds = time.perf_counter() - started
        report = self.report()
        self.write(report)
        return report

    # ------------------------------------------------------------------
    def report(self) -> dict:
        verdicts: dict[str, int] = {}
        for outcome in self.outcomes:
            verdicts[outcome.verdict] = verdicts.get(outcome.verdict, 0) + 1
        return {
            "schema": CAMPAIGN_SCHEMA,
            "name": self.name,
            "seeds": list(self.seeds),
            "randomize": self.randomize,
            "runs": [outcome.as_dict() for outcome in self.outcomes],
            "summary": verdicts,
            "ok": all(outcome.verdict in OK_VERDICTS for outcome in self.outcomes),
            "wall_seconds": round(self._wall_seconds, 3),
        }

    @property
    def path(self) -> str:
        return os.path.join(self.out_dir, f"CAMPAIGN_{self.name}.json")

    def write(self, report: Optional[dict] = None) -> str:
        os.makedirs(self.out_dir, exist_ok=True)
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(report or self.report(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return self.path

"""Scenario specs: topology + workload + fault schedule + expected verdict.

A :class:`Scenario` is declarative and inert — building one touches no
simulator.  The :class:`~repro.scenario.runner.ScenarioRunner` turns it
into a live :class:`~repro.hierarchy.network.HierarchicalSystem`, drives
the workload, injects the fault schedule and classifies the outcome
against the scenario's :class:`Expectation`:

- ``Expectation.safe()`` — no invariant violation and no liveness stall;
- ``Expectation.violates("supply", ...)`` — the named auditors must trip
  (any other auditor tripping is UNEXPECTED); ``tolerate=`` lists
  auditors whose collateral violations are acceptable side effects;
- ``Expectation.degrades("progress:<subnet>")`` — the named SLO must be
  breached (currently: a progress stall on the named subnet).

Scenarios load from Python or TOML (:func:`load_toml` — requires the
stdlib ``tomllib``, Python 3.11+; loading fails gracefully on older
interpreters, everything else here works everywhere).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.scenario.errors import ScenarioError
from repro.scenario.faults import Fault, fault_from_spec

VERDICT_CLEAN = "clean"
VERDICT_EXPECTED = "expected-violation"
VERDICT_UNEXPECTED = "unexpected-violation"
VERDICT_STALL = "liveness-stall"

#: Verdicts that do NOT fail a campaign.
OK_VERDICTS = (VERDICT_CLEAN, VERDICT_EXPECTED)


# ----------------------------------------------------------------------
# Expected verdicts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Expectation:
    """What a scenario is supposed to do to the invariant monitors."""

    kind: str = "safe"  # "safe" | "violates" | "degrades"
    auditors: tuple = ()  # for "violates": auditors that MUST trip
    tolerate: tuple = ()  # extra auditors allowed to trip alongside
    slo: Optional[str] = None  # for "degrades": e.g. "progress:/root/s0"

    @classmethod
    def safe(cls) -> "Expectation":
        return cls(kind="safe")

    @classmethod
    def violates(cls, *auditors, tolerate=()) -> "Expectation":
        if not auditors:
            raise ScenarioError("violates() needs at least one auditor name")
        return cls(kind="violates", auditors=tuple(auditors), tolerate=tuple(tolerate))

    @classmethod
    def degrades(cls, slo: str) -> "Expectation":
        if not slo.startswith("progress:"):
            raise ScenarioError(
                f"unknown SLO {slo!r}; supported: 'progress:<subnet>'"
            )
        return cls(kind="degrades", slo=slo)

    @classmethod
    def parse(cls, text: str, tolerate=()) -> "Expectation":
        """Parse ``"safe"``, ``"violates(a, b)"`` or ``"degrades(slo)"``."""
        text = text.strip()
        if text == "safe":
            return cls.safe()
        for kind in ("violates", "degrades"):
            if text.startswith(f"{kind}(") and text.endswith(")"):
                inner = text[len(kind) + 1:-1]
                parts = [part.strip() for part in inner.split(",") if part.strip()]
                if kind == "violates":
                    return cls.violates(*parts, tolerate=tolerate)
                if len(parts) != 1:
                    raise ScenarioError(f"degrades() takes one SLO, got {text!r}")
                return cls.degrades(parts[0])
        raise ScenarioError(f"cannot parse expectation {text!r}")

    def render(self) -> str:
        if self.kind == "safe":
            return "safe"
        if self.kind == "violates":
            return f"violates({', '.join(self.auditors)})"
        return f"degrades({self.slo})"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "auditors": list(self.auditors),
            "tolerate": list(self.tolerate),
            "slo": self.slo,
        }


# ----------------------------------------------------------------------
# Topology / workload
# ----------------------------------------------------------------------
@dataclass
class SubnetSpec:
    """One subnet to spawn (a declarative
    :class:`~repro.hierarchy.network.SubnetConfig` subset)."""

    name: str = "s0"
    parent: str = "/root"
    validators: int = 3
    engine: str = "poa"
    block_time: float = 0.25
    checkpoint_period: int = 5
    finality_depth: int = 5

    @property
    def path(self) -> str:
        return f"{self.parent.rstrip('/')}/{self.name}" if self.parent != "/root" \
            else f"/root/{self.name}"


@dataclass
class TopologySpec:
    """The hierarchy to build: rootnet knobs plus subnets to spawn."""

    root_validators: int = 3
    root_engine: str = "poa"
    root_block_time: float = 0.5
    latency: float = 0.02
    loss_rate: float = 0.0
    checkpoint_period: int = 5
    subnets: list = field(default_factory=lambda: [SubnetSpec()])


@dataclass
class PaymentSpec:
    """Open-loop intra-subnet payments on one subnet."""

    subnet: str = "/root/s0"
    rate: float = 4.0
    senders: int = 2
    funds: int = 100_000


@dataclass
class CrossNetSpec:
    """Open-loop cross-net transfers between two subnets."""

    from_subnet: str = "/root/s0"
    to_subnet: str = "/root"
    rate: float = 1.0
    funds: int = 100_000


@dataclass
class WorkloadSpec:
    """The traffic a scenario runs under its fault schedule."""

    payments: list = field(default_factory=list)  # list[PaymentSpec]
    crossnet: list = field(default_factory=list)  # list[CrossNetSpec]


# ----------------------------------------------------------------------
# The scenario
# ----------------------------------------------------------------------
@dataclass
class Scenario:
    """A complete, runnable adversarial scenario."""

    name: str
    description: str = ""
    topology: TopologySpec = field(default_factory=TopologySpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    faults: list = field(default_factory=list)  # list[Fault]
    duration: float = 30.0  # sim-seconds of fault campaign after setup
    expect: Expectation = field(default_factory=Expectation.safe)
    seed: int = 1
    stall_after: float = 10.0  # progress-watchdog threshold (sim-seconds)

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario needs a name")
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise ScenarioError(f"not a Fault: {fault!r}")
        known = {"/root"} | {spec.path for spec in self.topology.subnets}
        for fault in self.faults:
            subnet = getattr(fault, "subnet", None)
            if subnet is not None and subnet not in known:
                raise ScenarioError(
                    f"fault {fault.KIND} targets unknown subnet {subnet!r}; "
                    f"topology has {sorted(known)}"
                )

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "duration": self.duration,
            "expect": self.expect.as_dict(),
            "subnets": [vars(spec) for spec in self.topology.subnets],
            "faults": [fault.describe() for fault in self.faults],
        }


# ----------------------------------------------------------------------
# TOML loading (Python 3.11+; gated import, everything else is 3.9-safe)
# ----------------------------------------------------------------------
def _load_tomllib():
    try:
        import tomllib
    except ImportError:  # pragma: no cover - version-dependent
        raise ScenarioError(
            "TOML scenario loading needs the stdlib 'tomllib' (Python 3.11+); "
            "build the Scenario in Python instead"
        ) from None
    return tomllib


def scenario_from_dict(data: dict) -> Scenario:
    """Build a :class:`Scenario` from plain data (the TOML document shape)."""
    data = dict(data)
    meta = dict(data.pop("scenario", {}))
    topology_data = dict(data.pop("topology", {}))
    workload_data = dict(data.pop("workload", {}))
    fault_specs = list(data.pop("faults", []))
    if data:
        raise ScenarioError(f"unknown top-level scenario sections: {sorted(data)}")

    subnets = [
        SubnetSpec(**spec) for spec in topology_data.pop("subnets", [{}])
    ]
    topology = TopologySpec(subnets=subnets, **topology_data)
    workload = WorkloadSpec(
        payments=[PaymentSpec(**spec) for spec in workload_data.pop("payments", [])],
        crossnet=[CrossNetSpec(**spec) for spec in workload_data.pop("crossnet", [])],
    )
    if workload_data:
        raise ScenarioError(f"unknown workload keys: {sorted(workload_data)}")
    expect = Expectation.parse(
        meta.pop("expect", "safe"), tolerate=tuple(meta.pop("tolerate", ()))
    )
    try:
        return Scenario(
            topology=topology,
            workload=workload,
            faults=[fault_from_spec(spec) for spec in fault_specs],
            expect=expect,
            **meta,
        )
    except TypeError as err:
        raise ScenarioError(f"bad [scenario] section: {err}") from None


def load_toml(path: str) -> Scenario:
    """Load a scenario from a TOML file (see tests for the format)."""
    tomllib = _load_tomllib()
    with open(path, "rb") as handle:
        return scenario_from_dict(tomllib.load(handle))


def loads_toml(text: str) -> Scenario:
    """Load a scenario from TOML source text."""
    tomllib = _load_tomllib()
    return scenario_from_dict(tomllib.loads(text))

"""Adversarial scenario campaign engine.

Declarative fault DSL (:mod:`repro.scenario.faults`), scenario specs and
TOML loading (:mod:`repro.scenario.spec`), the instrumented runner with
verdict classification (:mod:`repro.scenario.runner`), the seeded
campaign grid (:mod:`repro.scenario.campaign`) and the canonical library
(:mod:`repro.scenario.library`).  CLI entry points:
``python -m repro.scenario`` runs campaigns,
``python -m repro.scenario.report`` triages their JSON output.
"""

from repro.scenario.campaign import CampaignRunner
from repro.scenario.errors import ScenarioError
from repro.scenario.faults import (
    ByzantineFault,
    CheckpointWithholdFault,
    ChurnFault,
    CrashFault,
    CrossMsgSpamFault,
    EngineSwapFault,
    EquivocationFault,
    Fault,
    FaultInjector,
    FAULT_KINDS,
    ForgedCheckpointFault,
    LinkDegradeFault,
    PartitionFault,
    ReorgFault,
    Trigger,
    fault_from_spec,
    select_validators,
)
from repro.scenario.runner import (
    ProgressWatchdog,
    ScenarioOutcome,
    ScenarioRunner,
    run_scenario,
)
from repro.scenario.spec import (
    OK_VERDICTS,
    VERDICT_CLEAN,
    VERDICT_EXPECTED,
    VERDICT_STALL,
    VERDICT_UNEXPECTED,
    CrossNetSpec,
    Expectation,
    PaymentSpec,
    Scenario,
    SubnetSpec,
    TopologySpec,
    WorkloadSpec,
    load_toml,
    loads_toml,
    scenario_from_dict,
)

# NOTE: repro.scenario.library and repro.scenario.report are imported
# lazily by callers — keeping them (and __main__) out of the eager import
# graph avoids runpy double-import warnings for the CLI modules.

__all__ = [
    "ByzantineFault",
    "CampaignRunner",
    "CheckpointWithholdFault",
    "ChurnFault",
    "CrashFault",
    "CrossMsgSpamFault",
    "CrossNetSpec",
    "EngineSwapFault",
    "EquivocationFault",
    "Expectation",
    "FAULT_KINDS",
    "Fault",
    "FaultInjector",
    "ForgedCheckpointFault",
    "LinkDegradeFault",
    "OK_VERDICTS",
    "PartitionFault",
    "PaymentSpec",
    "ProgressWatchdog",
    "ReorgFault",
    "Scenario",
    "ScenarioError",
    "ScenarioOutcome",
    "ScenarioRunner",
    "SubnetSpec",
    "TopologySpec",
    "Trigger",
    "VERDICT_CLEAN",
    "VERDICT_EXPECTED",
    "VERDICT_STALL",
    "VERDICT_UNEXPECTED",
    "WorkloadSpec",
    "fault_from_spec",
    "load_toml",
    "loads_toml",
    "run_scenario",
    "scenario_from_dict",
    "select_validators",
]

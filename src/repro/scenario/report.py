"""``python -m repro.scenario.report`` — triage a campaign JSON.

Reads one or more ``CAMPAIGN_*.json`` files, prints a verdict table and
a drill-down for every non-OK run (which auditors tripped, which faults
had fired by then, where the postmortem bundles landed), and exits
non-zero when any campaign is not OK — the CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.analysis.report import Table
from repro.scenario.campaign import CAMPAIGN_SCHEMA
from repro.scenario.spec import OK_VERDICTS


def load_campaign(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    schema = report.get("schema")
    if schema != CAMPAIGN_SCHEMA:
        raise ValueError(f"{path}: unexpected schema {schema!r}")
    return report


def _verdict_table(report: dict) -> Table:
    table = Table(
        f"campaign {report['name']}",
        ["scenario", "seed", "verdict", "expected", "tripped", "stalls", "bundles"],
    )
    for run in report["runs"]:
        table.add_row(
            run["scenario"],
            run["seed"],
            run["verdict"] + ("" if run["ok"] else "  <-- TRIAGE"),
            run["expected"],
            ",".join(run["tripped"]) or "-",
            len(run["stalls"]),
            len(run["bundles"]),
        )
    return table


def _triage_detail(run: dict) -> str:
    lines = [
        f"TRIAGE {run['scenario']} seed={run['seed']}: "
        f"{run['verdict']} (expected {run['expected']})"
    ]
    for note in run["notes"]:
        lines.append(f"  note: {note}")
    for violation in run["violations"][:10]:
        lines.append(
            f"  violation t={violation['time']:.2f} [{violation['auditor']}] "
            f"{violation['subnet']}: {violation['description']}"
        )
    if len(run["violations"]) > 10:
        lines.append(f"  ... and {len(run['violations']) - 10} more violations")
    for stall in run["stalls"]:
        lines.append(
            f"  stall {stall['subnet']}: height {stall['height']} since "
            f"t={stall['since']:.2f}"
        )
        quorum = (stall.get("report") or {}).get("quorum") or {}
        if quorum.get("kind") == "vote-quorum":
            missing = (
                list(quorum.get("silent") or ())
                + list(quorum.get("unreachable") or ())
                + [m["voter"] for m in quorum.get("misaligned") or ()]
            )
            lines.append(
                f"    quorum at h{quorum.get('height')} r{quorum.get('round')}: "
                f"{quorum.get('held_power')}/{quorum.get('needed_power')} power; "
                f"missing: {', '.join(missing) or '-'}"
            )
        elif quorum.get("kind") == "leader-schedule":
            lines.append(
                f"    slot engine: expected leader "
                f"{quorum.get('expected_leader')}, head spread "
                f"{quorum.get('head_spread')}"
            )
    for entry in run["fault_log"]:
        lines.append(
            f"  fault t={entry['time']:.2f} {entry['event']} {entry['kind']}"
        )
    for path in run["bundles"]:
        lines.append(f"  bundle: {path}")
    for path in run.get("stall_files") or []:
        lines.append(f"  stall report: {path}")
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenario.report",
        description="Triage repro.scenario campaign reports.",
    )
    parser.add_argument("paths", nargs="+", help="CAMPAIGN_*.json files")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a machine-readable triage summary instead of tables",
    )
    args = parser.parse_args(argv)

    exit_code = 0
    summaries = []
    for path in args.paths:
        report = load_campaign(path)
        bad = [run for run in report["runs"] if run["verdict"] not in OK_VERDICTS]
        if bad:
            exit_code = 1
        summaries.append(
            {
                "path": path,
                "name": report["name"],
                "ok": report["ok"] and not bad,
                "summary": report["summary"],
                "triage": [
                    {
                        "scenario": run["scenario"],
                        "seed": run["seed"],
                        "verdict": run["verdict"],
                        "notes": run["notes"],
                        "bundles": run["bundles"],
                    }
                    for run in bad
                ],
            }
        )
        if not args.as_json:
            _verdict_table(report).show()
            for run in bad:
                print("\n" + _triage_detail(run))
            status = "OK" if not bad else "NOT OK"
            print(
                f"\ncampaign {report['name']}: {status} "
                f"({len(report['runs'])} runs, {report['summary']})"
            )
    if args.as_json:
        json.dump({"ok": exit_code == 0, "campaigns": summaries}, sys.stdout, indent=2)
        sys.stdout.write("\n")
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())

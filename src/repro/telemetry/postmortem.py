"""Render a flight-recorder postmortem bundle for human eyes.

Usage::

    python -m repro.telemetry.postmortem postmortem_s600_000.json
    python -m repro.telemetry.postmortem bundle.json --tail 40

The bundle is produced by :class:`repro.telemetry.recorder.FlightRecorder`
(schema ``repro.postmortem/v1``) when an invariant violation fires or a
benchmark dies.  Like ``repro.telemetry.report``, a missing or unreadable
path exits 1 with a one-line error instead of a traceback.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from repro.analysis.report import Table

_SCHEMA = "repro.postmortem/v1"


def render(bundle: dict, tail: int = 20) -> str:
    """Human-readable multi-section view of a postmortem bundle."""
    out: list[str] = []
    sim = bundle.get("sim", {})
    out.append(
        f"postmortem: reason={bundle.get('reason')} "
        f"t={sim.get('now')} seed={sim.get('seed')} "
        f"events={sim.get('events_executed')}"
    )

    violation = bundle.get("violation")
    if violation:
        out.append("")
        out.append(
            f"violation #{violation.get('seq')} [{violation.get('auditor')}] "
            f"at t={violation.get('time')} in {violation.get('subnet')}:"
        )
        out.append(f"  {violation.get('description')}")

    violations = bundle.get("violations") or []
    if violations:
        table = Table("violations", ["seq", "time", "auditor", "subnet", "description"])
        for v in violations:
            table.add_row(
                v.get("seq"), v.get("time"), v.get("auditor"),
                v.get("subnet"), v.get("description"),
            )
        out.append("")
        out.append(table.render())

    stall_reports = bundle.get("stall_reports") or []
    if stall_reports:
        from repro.telemetry.rounds import render_stall_report

        for report in stall_reports:
            out.append("")
            out.append(render_stall_report(report))

    heads = bundle.get("heads") or {}
    if heads:
        table = Table("subnet heads", ["subnet", "height", "cid"])
        for path in sorted(heads):
            table.add_row(path, heads[path].get("height"), heads[path].get("cid"))
        out.append("")
        out.append(table.render())

    spans = bundle.get("open_spans") or []
    if spans:
        table = Table("open spans", ["trace", "shape", "to", "value", "last phase"])
        for span in spans:
            info = span.get("info", {})
            events = span.get("events") or []
            last = events[-1]["phase"] if events else "-"
            table.add_row(
                str(span.get("trace_id", ""))[:16], info.get("shape"),
                info.get("to_subnet"), info.get("value"), last,
            )
        out.append("")
        out.append(table.render())

    health = bundle.get("health_recent") or []
    if health:
        table = Table(
            "last health sample",
            ["subnet", "height", "mempool", "pending xmsgs", "ckpt lag"],
        )
        latest = health[-1]
        for path in sorted(latest):
            sample = latest[path]
            table.add_row(
                path, sample.get("height"), sample.get("mempool"),
                sample.get("pending_crossmsgs"), sample.get("checkpoint_lag"),
            )
        out.append("")
        out.append(table.render())

    dispatch = bundle.get("dispatch_recent") or []
    if dispatch:
        out.append("")
        out.append(f"-- dispatch tail ({min(tail, len(dispatch))} of {len(dispatch)}) --")
        for time, label in dispatch[-tail:]:
            out.append(f"  [{time:12.6f}] {label}")

    trace = bundle.get("trace_tail") or []
    if trace:
        dropped = bundle.get("trace_dropped") or 0
        suffix = f", {dropped} dropped upstream" if dropped else ""
        out.append("")
        out.append(f"-- trace tail ({min(tail, len(trace))} of {len(trace)}{suffix}) --")
        out.extend(f"  {line}" for line in trace[-tail:])

    return "\n".join(out)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.postmortem",
        description="Render a flight-recorder postmortem bundle.",
    )
    parser.add_argument("bundle", help="path to a postmortem_*.json bundle")
    parser.add_argument(
        "--tail", type=int, default=20,
        help="how many trace/dispatch lines to show (default 20)",
    )
    args = parser.parse_args(argv)
    try:
        with open(args.bundle, encoding="utf-8") as fh:
            bundle = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"error: cannot read postmortem bundle {args.bundle!r}: {err}",
              file=sys.stderr)
        return 1
    schema = bundle.get("schema")
    if schema == "repro.stall/v1":
        # A standalone stall report (CI artifacts save these directly).
        from repro.telemetry.rounds import render_stall_report

        print(render_stall_report(bundle))
        return 0
    if schema != _SCHEMA:
        print(
            f"warning: unexpected schema {schema!r} "
            f"(expected {_SCHEMA!r})",
            file=sys.stderr,
        )
    try:
        print(render(bundle, tail=args.tail))
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early; suppress the
        # interpreter-shutdown flush error and exit cleanly.
        sys.stdout = open(os.devnull, "w", encoding="utf-8")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Causal span tracing for the cross-net message lifecycle.

The simulator's metrics and trace log are flat: they can say *how many*
cross-net messages committed, but not where one message spent its time.
:class:`SpanTracer` reconstructs causality.  Every cross-msg carries a
stable CID from origination to delivery (the frozen
:class:`~repro.hierarchy.crossmsg.CrossMsg` travels whole through every
SCA hop), and the SCA's receipt events now carry that CID — so observing
the committed chains of all subnets yields, per message, an ordered list
of hops:

    submit (user handed the tx to a node)
      → enqueue @ source subnet   (SCA committed the origination)
      → enqueue @ each relay hop  (SCA re-routed it top-down/bottom-up)
      → deliver @ destination     (funds/call landed)

and, per checkpoint: seal @ child → submit (validator sent it to the
parent SA) → commit @ parent.

Hop latencies land as simulated-time histograms on the simulator's
:class:`~repro.sim.metrics.MetricsRegistry`:

- ``xnet.hop.submit.L<k>`` — submission to source-chain commit at level k;
- ``xnet.hop.topdown.L<k>`` / ``xnet.hop.bottomup.L<k>`` — one hop whose
  *arrival* subnet sits at hierarchy level k (root = 0);
- ``xnet.e2e.{topdown,bottomup,path}`` — end-to-end by route shape;
- ``checkpoint.lag`` (+ ``checkpoint.lag.L<k>``) — child seal to parent
  commit; ``checkpoint.hop.seal_to_submit`` / ``.submit_to_commit`` split
  the signature-gathering wait from the parent-chain inclusion wait.

Determinism: the tracer is installed on ``sim.span_tracer`` and is fed at
block-commit time by every node.  Observations are deduplicated on
``(trace id, phase, subnet)`` — the first committing node wins, which is
deterministic on a deterministic simulator.  The tracer writes **only**
to ``sim.metrics``; it never touches ``sim.trace``, so the determinism
digest is byte-identical with tracing enabled or disabled.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional


def subnet_level(path: str) -> int:
    """Hierarchy level of a subnet path: ``/root`` = 0, ``/root/a/b`` = 2."""
    return path.count("/") - 1


def route_shape(source: str, destination: str) -> str:
    """Classify a route: ``topdown``, ``bottomup`` or ``path`` (via an LCA)."""
    if destination.startswith(source + "/"):
        return "topdown"
    if source.startswith(destination + "/"):
        return "bottomup"
    return "path"


@dataclass
class SpanEvent:
    """One observed point in a message's (or checkpoint's) lifecycle."""

    time: float
    phase: str  # submit | enqueue | deliver | fail
    subnet: str


class SpanTracer:
    """Collects causal cross-net spans from committed-block receipt events.

    Install with :meth:`install` (sets ``sim.span_tracer``); every
    :class:`~repro.runtime.node.NodeRuntime` then feeds it newly-canonical
    blocks via :meth:`on_block_commit`.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self.metrics = sim.metrics
        # msg cid hex -> ordered SpanEvents (deterministic arrival order)
        self.traces: dict[str, list[SpanEvent]] = {}
        # msg cid hex -> {to_subnet, to_addr, value, kind, status}
        self.trace_info: dict[str, dict] = {}
        # checkpoint cid hex -> {source, window, sealed, submitted, committed, child}
        self.checkpoints: dict[str, dict] = {}
        self._seen: set = set()
        # (source, to_subnet, to_addr, value) -> FIFO of submission times
        self._pending_submits: dict[tuple, deque] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def install(self) -> "SpanTracer":
        """Attach to the simulator; nodes start feeding commits at once."""
        self.sim.span_tracer = self
        return self

    def uninstall(self) -> None:
        if self.sim.span_tracer is self:
            self.sim.span_tracer = None

    # ------------------------------------------------------------------
    # Submission notes (trace-context origination)
    # ------------------------------------------------------------------
    def note_submit(
        self, source_subnet: str, to_subnet: str, to_addr: str, value: int
    ) -> None:
        """Record that a user just submitted a cross-net send.

        The resulting :class:`CrossMsg`'s CID is only assigned when the
        source chain executes the SCA call, so submissions are held in a
        FIFO keyed by the route and bound to the first matching ``enqueue``
        observation — giving the span its true submit-time start.
        """
        key = (source_subnet, to_subnet, to_addr, value)
        self._pending_submits.setdefault(key, deque()).append(self.sim.now)

    # ------------------------------------------------------------------
    # Commit-time feed (called by every node; first observation wins)
    # ------------------------------------------------------------------
    def on_block_commit(self, subnet_id: str, node_id: str, block, events) -> None:
        now = self.sim.now
        for kind, payload in events:
            if kind == "crossmsg.topdown" or kind == "crossmsg.bottomup":
                _a, _b, value, cid, to_subnet, to_addr, mkind = payload
                self._observe_msg(
                    cid, "enqueue", subnet_id, now,
                    to_subnet=to_subnet, to_addr=to_addr, value=value, kind=mkind,
                )
            elif kind == "crossmsg.delivered":
                to_addr, value, cid = payload
                self._observe_msg(cid, "deliver", subnet_id, now)
            elif kind == "crossmsg.failed":
                to_addr, _error, cid = payload
                self._observe_msg(cid, "fail", subnet_id, now)
            elif kind == "checkpoint.sealed":
                window, ckpt_hex = payload
                self._observe_ckpt(ckpt_hex, "seal", subnet_id, now, window=window)
            elif kind == "checkpoint.committed":
                child_path, ckpt_hex = payload
                self._observe_ckpt(ckpt_hex, "commit", subnet_id, now, child=child_path)

    def checkpoint_submitted(self, ckpt_hex: str, subnet: str, window: int) -> None:
        """Called by the checkpoint service when a validator submits to the
        parent SA (designated submitter or fallback; first one wins)."""
        key = (ckpt_hex, "submit")
        if key in self._seen:
            return
        self._seen.add(key)
        now = self.sim.now
        entry = self.checkpoints.setdefault(ckpt_hex, {})
        entry["submitted"] = now
        entry.setdefault("source", subnet)
        entry.setdefault("window", window)
        sealed = entry.get("sealed")
        if sealed is not None:
            self._hist("checkpoint.hop.seal_to_submit", now - sealed)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _hist(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    def _observe_msg(
        self,
        trace_id: str,
        phase: str,
        subnet: str,
        now: float,
        to_subnet: Optional[str] = None,
        to_addr: Optional[str] = None,
        value: Optional[int] = None,
        kind: Optional[str] = None,
    ) -> None:
        key = (trace_id, phase, subnet)
        if key in self._seen:
            return
        self._seen.add(key)

        events = self.traces.get(trace_id)
        if events is None:
            events = self.traces[trace_id] = []
            self.trace_info[trace_id] = {"status": "in-flight"}
            self.metrics.counter("xnet.spans.started").inc()
        info = self.trace_info[trace_id]
        if to_subnet is not None:
            info.setdefault("to_subnet", to_subnet)
            info.setdefault("to_addr", to_addr)
            info.setdefault("value", value)
            info.setdefault("kind", kind)

        # Bind the user's submission (if any) as the span's true start.
        if phase == "enqueue" and not events and kind == "user":
            skey = (subnet, to_subnet, to_addr, value)
            pending = self._pending_submits.get(skey)
            if pending:
                t_submit = pending.popleft()
                events.append(SpanEvent(t_submit, "submit", subnet))
                self._hist(f"xnet.hop.submit.L{subnet_level(subnet)}", now - t_submit)
                self._hist("xnet.hop.submit", now - t_submit)

        prev = events[-1] if events else None
        events.append(SpanEvent(now, phase, subnet))

        if prev is not None and prev.phase != "submit" and phase in ("enqueue", "deliver"):
            level = subnet_level(subnet)
            direction = "topdown" if level > subnet_level(prev.subnet) else "bottomup"
            self._hist(f"xnet.hop.{direction}.L{level}", now - prev.time)
            self._hist(f"xnet.hop.{direction}", now - prev.time)

        if phase == "deliver":
            info["status"] = "delivered"
            first = events[0]
            shape = route_shape(first.subnet, subnet)
            info.setdefault("shape", shape)
            self._hist(f"xnet.e2e.{shape}", now - first.time)
            self.metrics.counter("xnet.spans.delivered").inc()
        elif phase == "fail":
            info["status"] = "failed"
            self.metrics.counter("xnet.spans.failed").inc()

    def _observe_ckpt(
        self,
        ckpt_hex: str,
        phase: str,
        subnet: str,
        now: float,
        window: Optional[int] = None,
        child: Optional[str] = None,
    ) -> None:
        key = (ckpt_hex, phase, subnet)
        if key in self._seen:
            return
        self._seen.add(key)
        entry = self.checkpoints.setdefault(ckpt_hex, {})
        if phase == "seal":
            entry["sealed"] = now
            entry["source"] = subnet
            entry["window"] = window
        elif phase == "commit":
            entry["committed"] = now
            entry["parent"] = subnet
            if child is not None:
                entry.setdefault("source", child)
            sealed = entry.get("sealed")
            if sealed is not None:
                lag = now - sealed
                self._hist("checkpoint.lag", lag)
                self._hist(f"checkpoint.lag.L{subnet_level(entry['source'])}", lag)
            submitted = entry.get("submitted")
            if submitted is not None:
                self._hist("checkpoint.hop.submit_to_commit", now - submitted)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def trace(self, trace_id: str) -> list:
        """The ordered span events of one message (empty if unknown)."""
        return list(self.traces.get(trace_id, ()))

    def delivered_count(self) -> int:
        return sum(
            1 for info in self.trace_info.values() if info["status"] == "delivered"
        )

    def summary(self) -> dict:
        """Plain-data overview used by the exporters."""
        return {
            "traces": len(self.traces),
            "delivered": self.delivered_count(),
            "failed": sum(
                1 for i in self.trace_info.values() if i["status"] == "failed"
            ),
            "in_flight": sum(
                1 for i in self.trace_info.values() if i["status"] == "in-flight"
            ),
            "checkpoints": len(self.checkpoints),
        }

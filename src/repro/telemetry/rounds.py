"""Consensus-round tracing and quorum-aware stall diagnosis.

Observability so far stops at *committed blocks*: span tracing (PR 2),
invariant auditors (PR 3) and the CPU profiler (PR 6) all watch the
chain, never the rounds that produce it.  This module watches the rounds.

:class:`RoundTracer` installs on the simulator's duck-typed
``sim.round_tracer`` slot (the ``span_tracer`` / ``invariant_monitor``
pattern: sim/ never imports telemetry, ``None`` = disabled) and is fed by
every consensus engine through
:meth:`~repro.consensus.base.ConsensusEngine._trace_round` at each
round/view transition — round start, proposal, vote arrival, lock,
commit, timeout, round skip — with the leader identity attached.  It
produces:

- per-validator round **timelines** (bounded rings, exported as one
  Perfetto track per validator by :mod:`repro.telemetry.export`);
- ``consensus.round.*`` quorum-progress **gauges** per subnet: the
  working frontier ``(height, round)``, prevote/precommit power held at
  the frontier vs. the quorum power needed;
- round-duration and rounds-per-height **histograms**, plus timeout /
  round-skip / lock counters.

:class:`StallDiagnoser` turns a stalled subnet into a *stall report*
(schema ``repro.stall/v1``): it snapshots every validator's live engine
state (:meth:`~repro.consensus.base.ConsensusEngine.debug_state` —
height/round/step, locked value, vote books, head CID), the gossip mesh,
partition state and degraded links, and names the **missing quorum**: who
holds the frontier, who voted, who is *silent* (no vote at the working
height) and who is *misaligned* (votes exist but at other rounds or for
another head — a round-desync signature).  The scenario
:class:`~repro.scenario.runner.ProgressWatchdog`, ``wait_for`` timeouts
and the flight recorder all attach these reports to their diagnostics.

Determinism: the tracer writes only to ``sim.metrics`` (never the trace
log, never RNG, never wall clock) and the diagnoser is a pure read of
engine/network state, so enabling either cannot change the end-state
digest.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

STALL_SCHEMA = "repro.stall/v1"

#: Event kinds engines feed (see ConsensusEngine._trace_round):
#:   round_start  — a validator entered (height, round); fields carry the
#:                  proposer plus quorum/total power
#:   round_skip   — entered via f+1 higher-round catch-up, not a timeout
#:   propose      — this validator broadcast a proposal
#:   proposal     — an acceptable proposal arrived
#:   vote         — a prevote/precommit was recorded (voter, power, cid)
#:   lock         — a polka locked this validator on a block
#:   timeout      — a phase timeout fired (step in fields)
#:   commit       — a block committed (slot engines emit this per block)
EVENT_KINDS = (
    "round_start", "round_skip", "propose", "proposal",
    "vote", "lock", "timeout", "commit",
)


class RoundTracer:
    """Collects per-validator consensus-round events from every engine.

    Install with :meth:`install` (sets ``sim.round_tracer``); engines feed
    it via ``ConsensusEngine._trace_round``.  Metrics-only writes keep it
    digest-neutral; timelines live in bounded per-validator rings.
    """

    def __init__(self, sim, timeline_capacity: int = 512) -> None:
        self.sim = sim
        self.metrics = sim.metrics
        self.timeline_capacity = timeline_capacity
        # (subnet, node_id) -> ring of (time, kind, fields)
        self.timelines: dict[tuple, deque] = {}
        # subnet -> frontier bookkeeping
        self._frontier: dict[str, tuple] = {}  # subnet -> (height, round)
        self._quorum: dict[str, tuple] = {}  # subnet -> (quorum, total)
        # (subnet, height, round, vote_type) -> {voter: power} (dedup across
        # observers: the first validator to record a voter's vote wins,
        # which is deterministic on a deterministic simulator)
        self._votes: dict[tuple, dict] = {}
        # (subnet, node_id) -> time the current round started
        self._round_started: dict[tuple, float] = {}
        # per-subnet counts for summary()
        self._counts: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def install(self) -> "RoundTracer":
        """Attach to the simulator; engines start feeding at once."""
        self.sim.round_tracer = self
        return self

    def uninstall(self) -> None:
        if getattr(self.sim, "round_tracer", None) is self:
            self.sim.round_tracer = None

    # ------------------------------------------------------------------
    # Feed (called by ConsensusEngine._trace_round)
    # ------------------------------------------------------------------
    def on_round_event(
        self, subnet: str, node_id: str, kind: str, time: float, fields: dict
    ) -> None:
        key = (subnet, node_id)
        ring = self.timelines.get(key)
        if ring is None:
            ring = self.timelines[key] = deque(maxlen=self.timeline_capacity)
        ring.append((time, kind, fields))

        counts = self._counts.setdefault(
            subnet, {k: 0 for k in EVENT_KINDS}
        )
        counts[kind] = counts.get(kind, 0) + 1

        height = fields.get("height")
        round_ = fields.get("round")

        if kind in ("round_start", "round_skip"):
            started = self._round_started.get(key)
            if started is not None:
                self.metrics.histogram(
                    f"consensus.round.{subnet}.duration"
                ).observe(time - started)
            self._round_started[key] = time
            quorum, total = fields.get("quorum"), fields.get("total")
            if quorum is not None:
                self._quorum[subnet] = (quorum, total)
            if kind == "round_skip":
                self.metrics.counter(f"consensus.round.{subnet}.skips").inc()
        elif kind == "timeout":
            self.metrics.counter(f"consensus.round.{subnet}.timeouts").inc()
        elif kind == "lock":
            self.metrics.counter(f"consensus.round.{subnet}.locks").inc()
        elif kind == "vote":
            voter = fields.get("voter")
            book = self._votes.setdefault(
                (subnet, height, round_, fields.get("vote_type")), {}
            )
            if voter not in book:
                book[voter] = fields.get("power", 1)
        elif kind == "commit":
            # Rounds are 0-based; a height that committed at round r took
            # r+1 rounds.  Slot engines commit at "round" 0 (their slot).
            self.metrics.histogram(
                f"consensus.round.{subnet}.per_height"
            ).observe((round_ or 0) + 1)
            self._round_started.pop(key, None)

        self._advance_frontier(subnet, height, round_)

    def _advance_frontier(
        self, subnet: str, height: Optional[int], round_: Optional[int]
    ) -> None:
        if height is None:
            return
        candidate = (height, round_ or 0)
        frontier = self._frontier.get(subnet)
        if frontier is not None and candidate <= frontier:
            self._refresh_gauges(subnet)
            return
        self._frontier[subnet] = candidate
        self._refresh_gauges(subnet)

    def _refresh_gauges(self, subnet: str) -> None:
        frontier = self._frontier.get(subnet)
        if frontier is None:
            return
        height, round_ = frontier
        gauge = self.metrics.gauge
        gauge(f"consensus.round.{subnet}.height").set(height)
        gauge(f"consensus.round.{subnet}.number").set(round_)
        quorum = self._quorum.get(subnet)
        if quorum is not None and quorum[0] is not None:
            gauge(f"consensus.round.{subnet}.quorum_power").set(quorum[0])
        for vote_type in ("prevote", "precommit"):
            book = self._votes.get((subnet, height, round_, vote_type))
            held = sum(book.values()) if book else 0
            gauge(f"consensus.round.{subnet}.{vote_type}_power").set(held)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def frontier(self, subnet: str) -> Optional[tuple]:
        """The working ``(height, round)`` frontier of *subnet*."""
        return self._frontier.get(subnet)

    def votes_at(self, subnet: str, height: int, round_: int, vote_type: str) -> dict:
        """``voter -> power`` recorded at ``(height, round, vote_type)``."""
        return dict(self._votes.get((subnet, height, round_, vote_type), ()))

    def timeline(self, subnet: str, node_id: str) -> list:
        """The (time, kind, fields) ring of one validator, oldest first."""
        return list(self.timelines.get((subnet, node_id), ()))

    def subnets(self) -> list:
        return sorted({subnet for subnet, _ in self.timelines})

    def summary(self) -> dict:
        """Plain-data overview used by the exporters and the report CLI."""
        per_subnet = {}
        for subnet in self.subnets():
            frontier = self._frontier.get(subnet)
            quorum = self._quorum.get(subnet, (None, None))
            counts = self._counts.get(subnet, {})
            entry = {
                "frontier_height": frontier[0] if frontier else None,
                "frontier_round": frontier[1] if frontier else None,
                "quorum_power": quorum[0],
                "total_power": quorum[1],
                "validators": sorted(
                    node for s, node in self.timelines if s == subnet
                ),
                "counts": {k: v for k, v in sorted(counts.items()) if v},
            }
            if frontier is not None:
                for vote_type in ("prevote", "precommit"):
                    book = self._votes.get(
                        (subnet, frontier[0], frontier[1], vote_type)
                    )
                    entry[f"{vote_type}_power"] = (
                        sum(book.values()) if book else 0
                    )
            per_subnet[subnet] = entry
        return {
            "subnets": per_subnet,
            "events": sum(len(ring) for ring in self.timelines.values()),
        }


# ----------------------------------------------------------------------
# Stall diagnosis
# ----------------------------------------------------------------------
class StallDiagnoser:
    """Builds quorum-aware stall reports for a stuck subnet.

    A report is a pure read of live state: every validator's
    ``engine.debug_state()``, its head, the gossip mesh, partition and
    link-degradation state, plus a quorum analysis at the subnet's working
    height — who voted, who is silent, who is misaligned.  Constructed
    with the :class:`~repro.hierarchy.network.HierarchicalSystem` it
    inspects; the tracer is optional (round frontiers enrich the report
    but engine vote books alone suffice).
    """

    def __init__(self, system) -> None:
        self.system = system

    # ------------------------------------------------------------------
    def diagnose(self, subnet_path: str) -> dict:
        """One ``repro.stall/v1`` report for *subnet_path*."""
        from repro.hierarchy.subnet_id import SubnetID

        system = self.system
        subnet = SubnetID(subnet_path)
        nodes = system.nodes_by_subnet[subnet]
        engine_name = nodes[0].engine.NAME

        validators = []
        for node in nodes:
            head = node.head()
            validators.append({
                "node": node.node_id,
                "running": node.engine.running,
                "head_height": head.height if head else None,
                "head_cid": head.cid.hex()[:16] if head else None,
                "state": node.engine.debug_state(),
            })

        report = {
            "schema": STALL_SCHEMA,
            "subnet": subnet.path,
            "time": system.sim.now,
            "engine": engine_name,
            "validators": validators,
            "quorum": self._missing_quorum(nodes, validators),
            "network": self._network_state(nodes),
        }
        tracer = getattr(system.sim, "round_tracer", None)
        if tracer is not None:
            report["frontier"] = tracer.frontier(subnet.path)
            report["recent_events"] = {
                node.node_id: [
                    [time, kind, self._brief(fields)]
                    for time, kind, fields in tracer.timeline(
                        subnet.path, node.node_id
                    )[-8:]
                ]
                for node in nodes
            }
        return report

    @staticmethod
    def _brief(fields: dict) -> dict:
        keep = ("height", "round", "step", "vote_type", "voter", "proposer")
        return {k: fields[k] for k in keep if fields.get(k) is not None}

    # ------------------------------------------------------------------
    def _missing_quorum(self, nodes, validators) -> dict:
        """Name the missing quorum at the subnet's working height.

        BFT engines expose their vote books via ``debug_state``; the
        working height is the highest any validator is deciding.  A
        validator in the set is *silent* when it holds no vote at that
        height anywhere in the books, and *misaligned* when its votes
        exist but only at rounds other than the busiest one (the
        round-desync signature).  Slot engines have no votes — for them
        the analysis reports the expected leader instead.
        """
        engine = nodes[0].engine
        vset = engine.validators
        result = {
            "needed_power": vset.quorum_power,
            "total_power": vset.total_power,
        }

        books = [v["state"].get("prevotes") for v in validators]
        if not any(books):
            # Slot/mining engine: no votes to analyse; name the leader.
            leader = None
            state = validators[0]["state"]
            for key in ("leader", "expected_leader"):
                if state.get(key) is not None:
                    leader = state[key]
                    break
            heights = [
                v["head_height"] for v in validators
                if v["head_height"] is not None
            ]
            result.update({
                "kind": "leader-schedule",
                "expected_leader": leader,
                "head_spread": (
                    max(heights) - min(heights) if heights else None
                ),
            })
            return result

        working = max(
            v["state"].get("height") or 0 for v in validators
        )
        # The union of every validator's books (vote *existence*: did a
        # vote ever happen anywhere?) and the best single view (vote
        # *delivery*: quorums form inside one validator's book, never
        # across a partition — a union that looks complete while no node
        # holds a quorum is exactly the partition signature).
        union = {"prevote": {}, "precommit": {}}
        views = []  # (held_power, round, observer, voters)
        current_round = None
        for v in validators:
            state = v["state"]
            if state.get("height") != working:
                continue
            if isinstance(state.get("round"), int):
                current_round = max(
                    current_round if current_round is not None else -1,
                    state["round"],
                )
            for vote_type, book_key in (
                ("prevote", "prevotes"), ("precommit", "precommits")
            ):
                for round_str, book in (state.get(book_key) or {}).items():
                    target = union[vote_type].setdefault(int(round_str), {})
                    for voter, cid in book.items():
                        target.setdefault(voter, cid)
                    if vote_type == "prevote":
                        views.append((
                            vset.power_of(book), int(round_str),
                            v["node"], sorted(book),
                        ))
        # Anchor on the round the subnet is stuck at NOW (a historical
        # round may show a full prevote quorum that still failed at
        # precommit); when no votes exist there yet, fall back to the
        # highest round that has any — never to a bygone quorum.
        best = max(
            (c for c in views if c[1] == current_round),
            key=lambda c: c[:2], default=None,
        )
        if best is None and union["prevote"]:
            frontier_round = max(union["prevote"])
            best = max(
                (c for c in views if c[1] == frontier_round),
                key=lambda c: c[:2], default=None,
            )

        voted_rounds: dict[str, set] = {}
        for vote_type in ("prevote", "precommit"):
            for round_, book in union[vote_type].items():
                for voter in book:
                    voted_rounds.setdefault(voter, set()).add(round_)

        members = [v.node_id for v in vset]
        held, busiest, observer, voted = best if best else (0, None, None, [])
        missing = [m for m in members if m not in voted]
        unreachable, misaligned, silent = [], [], []
        for m in missing:
            if busiest is not None and m in union["prevote"].get(busiest, ()):
                # Voted at the very round the best view is missing power
                # at — the vote exists but was never delivered there.
                unreachable.append(m)
            elif m in voted_rounds:
                misaligned.append(
                    {"voter": m, "rounds": sorted(voted_rounds[m])}
                )
            else:
                silent.append(m)
        result.update({
            "kind": "vote-quorum",
            "height": working,
            "round": busiest,
            "observer": observer,
            "voted": voted,
            "held_power": held,
            "missing_power": max(vset.quorum_power - held, 0),
            "unreachable": unreachable,
            "silent": silent,
            "misaligned": misaligned,
            "rounds_active": sorted(union["prevote"]),
        })
        return result

    # ------------------------------------------------------------------
    def _network_state(self, nodes) -> dict:
        """Partition/link/mesh state among the subnet's validators."""
        stack = self.system.stack
        topology = stack.topology
        ids = [node.node_id for node in nodes]

        degraded, unreachable = [], []
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                if not topology.can_communicate(a, b):
                    unreachable.append([a, b])
                profile = topology.link_profile(a, b)
                if profile is not None and (
                    profile.loss or profile.extra_latency
                ):
                    degraded.append({
                        "link": [a, b],
                        "loss": profile.loss,
                        "extra_latency": profile.extra_latency,
                    })

        mesh = {}
        for node in nodes:
            peers = stack.gossip._peers.get(node.node_id)
            topic_mesh = peers.mesh.get(node.topic) if peers else None
            mesh[node.node_id] = sorted(topic_mesh) if topic_mesh else []

        return {
            "partitions_active": sum(
                1 for groups in topology._partitions if groups
            ),
            "unreachable_pairs": unreachable,
            "degraded_links": degraded,
            "mesh": mesh,
        }


def render_stall_report(report: dict) -> str:
    """Human-readable multi-line view of one stall report."""
    out = [
        f"stall report: {report.get('subnet')} "
        f"engine={report.get('engine')} t={report.get('time')}"
    ]
    quorum = report.get("quorum") or {}
    if quorum.get("kind") == "vote-quorum":
        out.append(
            f"  best view ({quorum.get('observer')}) at height "
            f"{quorum.get('height')} round {quorum.get('round')}: "
            f"{quorum.get('held_power')}/{quorum.get('needed_power')} power "
            f"(of {quorum.get('total_power')}) — "
            f"short {quorum.get('missing_power')}"
        )
        if quorum.get("voted"):
            out.append(f"  voted:       {', '.join(quorum['voted'])}")
        if quorum.get("unreachable"):
            out.append(
                f"  unreachable: {', '.join(quorum['unreachable'])}"
                " (voted, but the vote never arrived)"
            )
        if quorum.get("silent"):
            out.append(f"  silent:      {', '.join(quorum['silent'])}")
        for entry in quorum.get("misaligned") or []:
            out.append(
                f"  misaligned: {entry['voter']} voted at rounds "
                f"{entry['rounds']}"
            )
        if quorum.get("rounds_active"):
            out.append(f"  rounds with votes: {quorum['rounds_active']}")
    elif quorum.get("kind") == "leader-schedule":
        out.append(
            f"  slot engine: expected leader {quorum.get('expected_leader')}, "
            f"head spread {quorum.get('head_spread')}"
        )
    for v in report.get("validators") or []:
        state = v.get("state") or {}
        detail = " ".join(
            f"{k}={state[k]}" for k in ("height", "round", "step", "slot")
            if state.get(k) is not None
        )
        out.append(
            f"  {v['node']}: head={v.get('head_height')} "
            f"running={v.get('running')} {detail}"
        )
    network = report.get("network") or {}
    if network.get("unreachable_pairs"):
        pairs = ", ".join(
            f"{a}↮{b}" for a, b in network["unreachable_pairs"]
        )
        out.append(f"  unreachable: {pairs}")
    for link in network.get("degraded_links") or []:
        a, b = link["link"]
        out.append(
            f"  degraded: {a}↔{b} loss={link.get('loss')} "
            f"latency+={link.get('extra_latency')}"
        )
    return "\n".join(out)

"""Flight recorder: bounded rings of recent activity + postmortem bundles.

The :class:`FlightRecorder` keeps what a crashed benchmark or a tripped
invariant needs for a diagnosis — the tail of the trace log, recent
dispatch activity, recent health samples — in bounded ring buffers, and
on demand (or automatically on every
:class:`~repro.telemetry.monitor.InvariantViolation`) freezes them into a
*postmortem bundle*: one JSON document with the violation, the rings, the
open cross-net span states, a full metrics snapshot and every subnet's
head.  Render a bundle with ``python -m repro.telemetry.postmortem``.

Determinism: everything stored in a bundle body is simulated time or
committed state — never wall-clock, never RNG — so producing bundles
cannot perturb the run and re-running a seed reproduces the bundle
byte-for-byte.  The recorder observes the dispatch bus through a
post-dispatch hook that only appends to a Python deque; it writes nothing
back into the simulation.
"""

from __future__ import annotations

import json
import math
import os
from collections import deque
from typing import Optional

_SCHEMA = "repro.postmortem/v1"


def _plain(value):
    """Recursively coerce *value* into JSON-safe plain data."""
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class FlightRecorder:
    """Bounded recent-history rings with on-demand postmortem dumps."""

    def __init__(
        self,
        sim,
        system=None,
        capacity: int = 256,
        out_dir: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.system = system
        self.capacity = capacity
        self.out_dir = out_dir if out_dir is not None else os.environ.get(
            "REPRO_POSTMORTEM_DIR"
        )
        self._dispatch_ring: deque = deque(maxlen=capacity)
        self._health_ring: deque = deque(maxlen=32)
        self._remove_hook = None
        self.bundles: list[dict] = []
        self.paths: list[str] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def install(self) -> "FlightRecorder":
        """Start recording dispatch activity (idempotent)."""
        if self._remove_hook is None:
            self._remove_hook = self.sim.dispatch.on_post_dispatch(self._on_dispatch)
        return self

    def uninstall(self) -> None:
        if self._remove_hook is not None:
            self._remove_hook()
            self._remove_hook = None

    # ------------------------------------------------------------------
    # Feeds
    # ------------------------------------------------------------------
    def _on_dispatch(self, event, _wall_elapsed: float) -> None:
        # Simulated time + label only: the wall-clock duration the hook
        # receives must stay out of anything a bundle serializes.
        self._dispatch_ring.append((self.sim.now, self.sim.dispatch.label_of(event)))

    def note_health(self, latest: dict) -> None:
        """Hooked to ``HealthProbe.on_sample``; copies the latest samples."""
        self._health_ring.append(
            {path: dict(sample) for path, sample in latest.items()}
        )

    # ------------------------------------------------------------------
    # Bundles
    # ------------------------------------------------------------------
    def dump(
        self,
        violation=None,
        reason: Optional[str] = None,
        stall_reports: Optional[list] = None,
    ) -> dict:
        """Freeze the rings into a bundle; write it if an out dir is set.

        *stall_reports* is a list of ``repro.stall/v1`` documents (see
        :class:`~repro.telemetry.rounds.StallDiagnoser`) — watchdogs and
        ``wait_for`` timeouts attach them so the bundle names the missing
        quorum, not just the stuck heights.
        """
        sim = self.sim
        monitor = getattr(sim, "invariant_monitor", None)
        bundle = {
            "schema": _SCHEMA,
            "reason": reason or ("invariant-violation" if violation else "on-demand"),
            "violation": violation.as_dict() if violation is not None else None,
            "sim": {
                "now": sim.now,
                "seed": sim.seed,
                "events_executed": sim.events_executed,
            },
            "violations": (
                [v.as_dict() for v in monitor.violations] if monitor is not None else []
            ),
            "trace_tail": [
                r.render() for r in sim.trace.records[-self.capacity:]
            ],
            "trace_dropped": sim.trace.dropped,
            "dispatch_recent": [list(entry) for entry in self._dispatch_ring],
            "health_recent": _plain(list(self._health_ring)),
            "open_spans": self._open_spans(),
            "metrics": _plain(sim.metrics.snapshot()),
            "heads": self._heads(),
            "stall_reports": _plain(list(stall_reports or [])),
        }
        self.bundles.append(bundle)
        if self.out_dir:
            path = os.path.join(
                self.out_dir,
                f"postmortem_s{sim.seed}_{len(self.bundles) - 1:03d}.json",
            )
            os.makedirs(self.out_dir, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(_plain(bundle), fh, indent=2, allow_nan=False)
                fh.write("\n")
            self.paths.append(path)
        return bundle

    def _open_spans(self, cap: int = 64) -> list:
        tracer = getattr(self.sim, "span_tracer", None)
        if tracer is None:
            return []
        spans = []
        for trace_id, info in tracer.trace_info.items():
            if info.get("status") != "in-flight":
                continue
            spans.append(
                {
                    "trace_id": trace_id,
                    "info": _plain(info),
                    "events": [
                        {"phase": e.phase, "subnet": e.subnet, "time": e.time}
                        for e in tracer.traces.get(trace_id, ())
                    ],
                }
            )
            if len(spans) >= cap:
                break
        return spans

    def _heads(self) -> dict:
        if self.system is None:
            return {}
        heads = {}
        for subnet in self.system.subnets:
            node = self.system.nodes_by_subnet[subnet][0]
            head = node.store.head
            heads[subnet.path] = {
                "height": head.height,
                "cid": head.cid.hex()[:16],
            }
        return heads

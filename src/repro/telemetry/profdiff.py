"""Profile diff CLI: ``python -m repro.telemetry.profdiff old.json new.json``.

Ranks per-dispatch-label CPU-share and allocation deltas between two
profiled runs and names the top regressed frames — the "why" behind a
``repro.perfcheck`` regression verdict (perfcheck prints this report
automatically when its tolerance gate fails and both sides carry
profiles).

Either argument may be:

- a ``BENCH_<name>.json`` (``repro.bench/v1``) or telemetry dump
  (``repro.telemetry/v1``) whose ``profile`` section was written by a
  profiled run,
- a raw ``repro.profile/v1`` document
  (:meth:`repro.telemetry.profiler.SamplingProfiler.snapshot`), or
- a committed ``repro.perf-trajectory/v1`` file whose newest entry embeds
  a ``profile`` summary.

CPU shares are fractions of each run's own sample total, so runs of
different lengths diff meaningfully; deltas are reported in percentage
points (pp).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from repro.analysis.report import Table
from repro.telemetry.profiler import PROFILE_SCHEMA

DIFF_SCHEMA = "repro.profdiff/v1"


class ProfDiffError(Exception):
    """Unreadable input or input without a profile section."""


def extract_profile(document: dict) -> Optional[dict]:
    """The ``repro.profile/v1`` section of any supported document shape."""
    if not isinstance(document, dict):
        return None
    if document.get("schema") == PROFILE_SCHEMA:
        return document
    profile = document.get("profile")
    if isinstance(profile, dict):
        return profile
    if document.get("schema") == "repro.perf-trajectory/v1":
        trajectory = document.get("trajectory") or []
        if trajectory and isinstance(trajectory[-1], dict):
            profile = trajectory[-1].get("profile")
            if isinstance(profile, dict):
                return profile
    return None


def load_profile(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ProfDiffError(f"cannot read {path}: {exc}") from exc
    profile = extract_profile(document)
    if profile is None:
        raise ProfDiffError(
            f"{path} carries no profile section — was the run profiled? "
            "(enable_telemetry(profile=True) / BENCH_PROFILE=1)"
        )
    return profile


def _frame_shares(profile: dict) -> dict:
    """``frame -> share of this run's total samples`` from per-label
    ``top_frames`` (truncated lists, so shares are a lower bound)."""
    total = profile.get("samples") or 0
    shares: dict = {}
    if not total:
        return shares
    for row in (profile.get("labels") or {}).values():
        for frame, count in row.get("top_frames") or []:
            shares[frame] = shares.get(frame, 0.0) + count / total
    return shares


def diff_profiles(old: dict, new: dict) -> dict:
    """Per-label and per-frame deltas, most-regressed first.

    "Regressed" = CPU share grew from *old* to *new*; allocation deltas
    ride along per label.  Returns plain JSON-safe data.
    """
    old_labels = old.get("labels") or {}
    new_labels = new.get("labels") or {}
    rows = []
    for label in sorted(set(old_labels) | set(new_labels)):
        before = old_labels.get(label) or {}
        after = new_labels.get(label) or {}
        old_share = before.get("cpu_share") or 0.0
        new_share = after.get("cpu_share") or 0.0
        old_alloc = before.get("alloc_bytes") or 0
        new_alloc = after.get("alloc_bytes") or 0
        rows.append(
            {
                "label": label,
                "old_share": old_share,
                "new_share": new_share,
                "delta_share": new_share - old_share,
                "old_alloc_bytes": old_alloc,
                "new_alloc_bytes": new_alloc,
                "delta_alloc_bytes": new_alloc - old_alloc,
            }
        )
    rows.sort(key=lambda row: (-row["delta_share"], row["label"]))

    old_frames = _frame_shares(old)
    new_frames = _frame_shares(new)
    frames = [
        {
            "frame": frame,
            "old_share": old_frames.get(frame, 0.0),
            "new_share": new_frames.get(frame, 0.0),
            "delta_share": new_frames.get(frame, 0.0) - old_frames.get(frame, 0.0),
        }
        for frame in sorted(set(old_frames) | set(new_frames))
    ]
    frames.sort(key=lambda row: (-row["delta_share"], row["frame"]))

    def _meta(profile: dict) -> dict:
        return {
            "samples": profile.get("samples"),
            "active_s": profile.get("active_s"),
            "interval_s": profile.get("interval_s"),
        }

    return {
        "schema": DIFF_SCHEMA,
        "old": _meta(old),
        "new": _meta(new),
        "labels": rows,
        "frames": frames,
    }


def _pp(share: float) -> str:
    return f"{share * 100:+.1f}pp"


def _pct(share: float) -> str:
    return f"{share * 100:.1f}%"


def _kb(size: float) -> str:
    return f"{size / 1024:+.0f}" if size else "0"


def render_diff(diff: dict, top: int = 12) -> str:
    """Human-readable culprit report for a computed diff."""
    old, new = diff["old"], diff["new"]
    sections = [
        "profile diff — old: {} samples over {}s, new: {} samples over {}s".format(
            old.get("samples", "?"),
            _round(old.get("active_s")),
            new.get("samples", "?"),
            _round(new.get("active_s")),
        )
    ]
    labels = diff["labels"][:top]
    if labels:
        table = Table(
            "per-label CPU share and allocation deltas (worst regression first)",
            ["label", "old cpu", "new cpu", "Δ cpu", "Δ alloc KiB"],
        )
        for row in labels:
            table.add_row(
                row["label"],
                _pct(row["old_share"]),
                _pct(row["new_share"]),
                _pp(row["delta_share"]),
                _kb(row["delta_alloc_bytes"]),
            )
        sections.append(table.render())
    regressed = [row for row in diff["frames"] if row["delta_share"] > 0][:top]
    if regressed:
        table = Table(
            "top regressed frames (share of run's CPU samples)",
            ["frame", "old", "new", "Δ"],
        )
        for row in regressed:
            table.add_row(
                row["frame"], _pct(row["old_share"]), _pct(row["new_share"]),
                _pp(row["delta_share"]),
            )
        sections.append(table.render())
    else:
        sections.append("no regressed frames — new run's hot frames all shrank or held")
    return "\n\n".join(sections)


def _round(value) -> str:
    if value is None:
        return "?"
    return f"{value:.2f}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.profdiff",
        description="Rank per-label CPU/alloc deltas between two profiled runs.",
    )
    parser.add_argument("old", help="baseline: BENCH_*.json, telemetry dump, "
                        "profile snapshot or perf-trajectory file")
    parser.add_argument("new", help="candidate run, same accepted shapes")
    parser.add_argument("--top", type=int, default=12,
                        help="rows per table (default 12)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full diff as JSON instead of tables")
    args = parser.parse_args(argv)
    try:
        diff = diff_profiles(load_profile(args.old), load_profile(args.new))
    except ProfDiffError as exc:
        print(f"profdiff: error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.json:
            print(json.dumps(diff, indent=2, allow_nan=False))
        else:
            print(render_diff(diff, top=args.top))
    except BrokenPipeError:
        # Downstream pager/head closed early — not an error.  Point
        # stdout at devnull so interpreter shutdown doesn't re-raise on
        # the final flush.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Continuous profiling & resource attribution (`repro.telemetry.profiler`).

The perf trajectory (``repro.perfcheck``) can say *that* a run got slower;
this module says *why*.  Three pillars, all observers of the simulation:

- **Sampling CPU profiler** — a daemon thread samples the sim thread's
  Python stack (``sys._current_frames()``) at a configurable wall-clock
  interval and attributes every sample to the DispatchBus label currently
  executing, read through
  :func:`repro.sim.scheduler.current_dispatch_label`.  Output: per-label
  CPU shares (they sum to 1.0 by construction) and collapsed stacks in
  flamegraph format.
- **Allocation / memory accountant** — with ``memory=True``, tracemalloc
  traced-byte deltas are bucketed per dispatch label through the bus's
  pre/post-dispatch hooks, and a whole-run top-allocation-site table is
  captured at stop.  Independently of tracemalloc, the sampler records a
  periodic whole-process RSS series and O(1) allocated-block counts.
- **Exporters** — :meth:`SamplingProfiler.snapshot` is the
  ``repro.profile/v1`` document embedded as the ``profile`` section of
  every ``BENCH_<name>.json``; :meth:`publish` exports ``mem.*`` and
  ``profile.*`` gauges into the run's MetricsRegistry;
  :meth:`collapsed_stacks` feeds flamegraph tooling and the Perfetto
  exporter grows a profiler track.  ``python -m repro.telemetry.profdiff``
  diffs two snapshots.

**Determinism contract** (DESIGN.md § Observability): the profiler writes
only to its own structures and — on explicit :meth:`publish` — to
``sim.metrics``.  It never touches the trace log, the event queue, or any
RNG, and the label slot it reads is maintained unconditionally by the
DispatchBus, so enabling profiling cannot change ``end_state_digest`` or
tie-shuffle invariance.  Overhead budget: sampling at the default 5 ms
interval must stay under 5% wall-clock on E1 k=8 (asserted by
``benchmarks/bench_e10_overhead.py``); tracemalloc accounting is costlier
and therefore a separate opt-in.
"""

from __future__ import annotations

import os
import sys
import threading
import time
import tracemalloc
from typing import Optional

from repro.sim.scheduler import current_dispatch_label

PROFILE_SCHEMA = "repro.profile/v1"

#: Label for samples taken while the sim thread is outside any dispatch
#: (queue machinery, test/bench driver code, idle waits).
OUTSIDE_DISPATCH = "<outside-dispatch>"

_UNKNOWN_FRAME = "<unknown>"


def read_rss_bytes() -> Optional[int]:
    """Resident set size of this process, or ``None`` where unreadable.

    Reads ``/proc/self/statm`` (Linux); falls back to ``ru_maxrss`` (a
    peak, not current, but monotone and better than nothing) elsewhere.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError, AttributeError):
        pass
    try:
        import resource

        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(peak_kb) * 1024
    except (ImportError, ValueError, OSError):
        return None


class SamplingProfiler:
    """Low-overhead CPU sampler + memory accountant for one simulator.

    Construct on the thread that drives the simulation (that thread is the
    sampling target), then :meth:`start`/:meth:`stop` around the measured
    region — or let ``HierarchicalSystem.enable_telemetry(profile=True)``
    and ``benchmarks/common.py`` do the wiring.  Both are idempotent, and
    a stopped profiler can be restarted (statistics accumulate).
    """

    def __init__(
        self,
        sim,
        # 10ms default: on a single-core host every wakeup preempts the
        # sim thread (context switch + cache refill), and 100Hz keeps the
        # measured worst-case tax inside the <5% budget e10 asserts while
        # still collecting hundreds of samples per benchmark run.
        interval: float = 0.01,
        memory: bool = False,
        max_stack_depth: int = 64,
        rss_every: int = 32,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive (got {interval})")
        self.sim = sim
        self.interval = float(interval)
        self.memory = bool(memory)
        self.max_stack_depth = max_stack_depth
        self.rss_every = max(1, rss_every)

        # CPU samples, written only by the sampler thread.
        self._samples: dict = {}  # (label, stack tuple) -> count
        self._label_samples: dict = {}  # label -> count
        self._total_samples = 0
        self._sampler_seconds = 0.0  # the sampler thread's own work
        self._code_names: dict = {}  # code object -> "pkg/file.py:func"

        # Memory accounting.
        self._alloc_bytes: dict = {}  # label -> net traced bytes allocated
        self._alloc_events: dict = {}  # label -> dispatches accounted
        self._mem_stack: list = []  # (event, traced bytes before) frames
        self._rss_points: list = []  # (wall seconds since start, rss bytes)
        self._traced: Optional[tuple] = None  # (current, peak) at stop
        self._alloc_top: list = []  # [(site, bytes)] at stop, memory mode
        self._owns_tracemalloc = False
        self._remove_hooks: list = []

        # Lifecycle.
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._target_ident: Optional[int] = None
        self._started_wall: Optional[float] = None
        self._active_seconds = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "SamplingProfiler":
        """Begin sampling the calling thread.  Idempotent."""
        if self._thread is not None:
            return self
        self._target_ident = threading.get_ident()
        self._stop_event.clear()
        if self.memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._owns_tracemalloc = True
            self._install_memory_hooks()
        self._started_wall = time.perf_counter()
        rss = read_rss_bytes()
        if rss is not None:
            self._rss_points.append((0.0, rss))
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling and finalize memory accounting.  Idempotent."""
        if self._thread is None:
            return self
        self._stop_event.set()
        self._thread.join()
        self._thread = None
        self._active_seconds += time.perf_counter() - self._started_wall
        rss = read_rss_bytes()
        if rss is not None:
            self._rss_points.append((self._active_seconds, rss))
        for remove in self._remove_hooks:
            remove()
        self._remove_hooks.clear()
        self._mem_stack.clear()
        if self.memory and tracemalloc.is_tracing():
            self._traced = tracemalloc.get_traced_memory()
            snapshot = tracemalloc.take_snapshot()
            self._alloc_top = [
                (f"{stat.traceback[0].filename}:{stat.traceback[0].lineno}", stat.size)
                for stat in snapshot.statistics("lineno")[:16]
            ]
            if self._owns_tracemalloc:
                tracemalloc.stop()
                self._owns_tracemalloc = False
        return self

    # ------------------------------------------------------------------
    # The sampler thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        frames_of = sys._current_frames
        target = self._target_ident
        ticks = 0
        while not self._stop_event.wait(self.interval):
            t0 = time.perf_counter()
            frame = frames_of().get(target)
            label = current_dispatch_label(target) or OUTSIDE_DISPATCH
            stack = self._collapse(frame)
            key = (label, stack)
            self._samples[key] = self._samples.get(key, 0) + 1
            self._label_samples[label] = self._label_samples.get(label, 0) + 1
            self._total_samples += 1
            ticks += 1
            if ticks % self.rss_every == 0:
                rss = read_rss_bytes()
                if rss is not None:
                    self._rss_points.append(
                        (time.perf_counter() - self._started_wall, rss)
                    )
            self._sampler_seconds += time.perf_counter() - t0

    def _collapse(self, frame) -> tuple:
        """Root-first tuple of ``pkg/file.py:func`` frames for *frame*."""
        if frame is None:
            return (_UNKNOWN_FRAME,)
        names = self._code_names
        stack = []
        depth = 0
        while frame is not None and depth < self.max_stack_depth:
            code = frame.f_code
            name = names.get(code)
            if name is None:
                filename = code.co_filename.replace("\\", "/")
                cut = filename.rfind("/repro/")
                if cut >= 0:
                    filename = filename[cut + 1:]
                else:
                    filename = filename.rsplit("/", 1)[-1]
                name = f"{filename}:{code.co_name}"
                names[code] = name
            stack.append(name)
            frame = frame.f_back
            depth += 1
        stack.reverse()
        return tuple(stack)

    # ------------------------------------------------------------------
    # Memory accounting (dispatch-label buckets via the bus hooks)
    # ------------------------------------------------------------------
    def _install_memory_hooks(self) -> None:
        bus = self.sim.dispatch

        def pre(event) -> None:
            self._mem_stack.append((event, tracemalloc.get_traced_memory()[0]))

        def post(event, _elapsed) -> None:
            stack = self._mem_stack
            # Suppressed events run pre- but never post-dispatch; their
            # stale frames sit above this event's and are discarded here
            # (stack discipline guarantees ours is underneath).
            while stack and stack[-1][0] is not event:
                stack.pop()
            if not stack:
                return
            _, before = stack.pop()
            delta = tracemalloc.get_traced_memory()[0] - before
            label = bus.label_of(event)
            if delta > 0:
                self._alloc_bytes[label] = self._alloc_bytes.get(label, 0) + delta
            self._alloc_events[label] = self._alloc_events.get(label, 0) + 1

        self._remove_hooks.append(bus.on_pre_dispatch(pre))
        self._remove_hooks.append(bus.on_post_dispatch(post))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def label_shares(self) -> dict:
        """``label -> fraction of CPU samples``; fractions sum to 1.0."""
        total = self._total_samples
        if not total:
            return {}
        return {
            label: count / total
            for label, count in sorted(
                self._label_samples.items(), key=lambda kv: (-kv[1], kv[0])
            )
        }

    def _top_frames(self, wanted_label: str, top: int) -> list:
        """Hottest *leaf* frames (self time) of one label's samples."""
        leafs: dict = {}
        for (label, stack), count in self._samples.items():
            if label == wanted_label and stack:
                leaf = stack[-1]
                leafs[leaf] = leafs.get(leaf, 0) + count
        ranked = sorted(leafs.items(), key=lambda kv: (-kv[1], kv[0]))
        return [[frame, count] for frame, count in ranked[:top]]

    def snapshot(self, top_frames: int = 8) -> dict:
        """The ``repro.profile/v1`` document (JSON-safe plain data)."""
        total = self._total_samples
        active = self._active_seconds
        if self._thread is not None and self._started_wall is not None:
            active += time.perf_counter() - self._started_wall
        labels = {}
        for label, count in sorted(
            self._label_samples.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            labels[label] = {
                "samples": count,
                "cpu_share": count / total if total else 0.0,
                "alloc_bytes": self._alloc_bytes.get(label, 0),
                "alloc_events": self._alloc_events.get(label, 0),
                "top_frames": self._top_frames(label, top_frames),
            }
        # Labels that allocated but were never caught on-CPU by a sample.
        for label in sorted(self._alloc_bytes):
            if label not in labels:
                labels[label] = {
                    "samples": 0,
                    "cpu_share": 0.0,
                    "alloc_bytes": self._alloc_bytes[label],
                    "alloc_events": self._alloc_events.get(label, 0),
                    "top_frames": [],
                }
        mem = {
            "rss_bytes": self._rss_points[-1][1] if self._rss_points else None,
            "rss_peak_bytes": (
                max(rss for _, rss in self._rss_points) if self._rss_points else None
            ),
            "rss_points": len(self._rss_points),
            "allocated_blocks": sys.getallocatedblocks(),
        }
        if self._traced is not None:
            mem["traced_bytes"], mem["traced_peak_bytes"] = self._traced
        document = {
            "schema": PROFILE_SCHEMA,
            "interval_s": self.interval,
            "memory": self.memory,
            "samples": total,
            "active_s": active,
            "sampler_s": self._sampler_seconds,
            "labels": labels,
            "mem": mem,
        }
        if self._alloc_top:
            document["alloc_top"] = [[site, size] for site, size in self._alloc_top]
        return document

    def rss_series(self) -> list:
        """``(wall seconds since start, rss bytes)`` points, oldest first."""
        return list(self._rss_points)

    def collapsed_stacks(self) -> list:
        """Collapsed-stack lines (``label;frame;frame count``), hottest first.

        The dispatch label is the synthetic root frame, so a flamegraph
        renders one tower per label.  Feed to speedscope, inferno or
        flamegraph.pl.
        """
        ranked = sorted(
            self._samples.items(), key=lambda kv: (-kv[1], kv[0][0], kv[0][1])
        )
        return [
            ";".join((label,) + stack) + f" {count}"
            for (label, stack), count in ranked
        ]

    def write_collapsed(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.collapsed_stacks():
                handle.write(line + "\n")
        return path

    def publish(self, metrics=None):
        """Export ``profile.*`` and ``mem.*`` gauges onto the registry.

        Call from the sim thread (normally after :meth:`stop`), so metric
        writes never race the run.
        """
        registry = metrics if metrics is not None else self.sim.metrics
        registry.gauge("profile.samples").set(self._total_samples)
        registry.gauge("profile.interval_s").set(self.interval)
        registry.gauge("profile.sampler_s").set(self._sampler_seconds)
        for label, share in self.label_shares().items():
            registry.gauge(f"profile.cpu_share.{label}").set(share)
        for label, size in sorted(self._alloc_bytes.items()):
            registry.gauge(f"profile.alloc_bytes.{label}").set(size)
        mem = self.snapshot()["mem"]
        for key in ("rss_bytes", "rss_peak_bytes", "traced_bytes",
                    "traced_peak_bytes"):
            if mem.get(key) is not None:
                registry.gauge(f"mem.{key}").set(mem[key])
        registry.gauge("mem.allocated_blocks").set(mem["allocated_blocks"])
        return registry

"""Live invariant monitors over the running hierarchy.

The paper's safety claims — the §II firewall bound, checkpoint-chain
integrity (§III-B) and exactly-once cross-net application (§IV-A) — are
checked after the fact by :func:`repro.hierarchy.firewall.audit_system`
and the test suite.  :class:`InvariantMonitor` checks them *while the
simulation runs*: it sits on the ``sim.invariant_monitor`` slot (the same
duck-typed observer slot family as ``sim.span_tracer``) and is fed every
newly-canonical block, its receipt events, and every reorg by
:class:`~repro.runtime.node.NodeRuntime`.

Five auditors ship by default:

- :class:`SupplyAuditor` — continuous firewall/supply conservation: the
  incremental form of ``audit_system`` every K commits per subnet, plus
  two live-only checks: a ``firewall.refused`` receipt event (an attempted
  over-extraction the firewall stopped) and a cumulative
  released-vs-subtree-burn bound that catches forged bottom-up value the
  parent's books alone cannot see.
- :class:`CheckpointAuditor` — every committed checkpoint chains from the
  previous one (prev-link), windows/epochs are strictly monotone, and the
  stored signatures still satisfy the SA's signature policy.
- :class:`ExactlyOnceAuditor` — no CrossMsg CID is applied twice at a
  destination on one chain, and per-route nonces never repeat with a
  different payload or go backwards.
- :class:`FinalityAuditor` — no two *final* blocks at the same height
  (across all nodes of a subnet), and no reorg deeper than the engine's
  finality depth.
- :class:`MembershipAuditor` — the parent SCA/SA registry agrees with the
  live validator cluster of every active child subnet.

Determinism contract (same as the span tracer, DESIGN.md § Observability):
auditors read committed state and write only to ``sim.metrics``, their own
violation list and (via the :class:`~repro.telemetry.recorder.FlightRecorder`)
postmortem bundles — never to ``sim.trace``, never to RNG streams, and
never with wall-clock time — so the trace digest is byte-identical with
monitors on or off.  Violations are deduplicated first-observation-wins,
which is deterministic on a deterministic simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.keys import Address
from repro.crypto.multisig import MultiSignature, verify_multisig
from repro.crypto.threshold import ThresholdSignature
from repro.hierarchy.gateway import SCA_ADDRESS
from repro.hierarchy.subnet_actor import threshold_scheme_for
from repro.hierarchy.subnet_id import SubnetID

_ZERO_CID_HEX = "00" * 32


@dataclass(frozen=True)
class InvariantViolation:
    """One invariant breach, recorded at simulated time (never wall clock)."""

    seq: int
    time: float
    auditor: str
    subnet: str
    description: str

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "time": self.time,
            "auditor": self.auditor,
            "subnet": self.subnet,
            "description": self.description,
        }


class Auditor:
    """Base class: override any of the three feed hooks."""

    name = "auditor"

    def on_block_commit(self, monitor, node, block, events) -> None:
        """A newly-canonical block (with its receipt events) on some node."""

    def on_periodic(self, monitor, node) -> None:
        """Every K commits per subnet — for whole-state sweeps."""

    def on_reorg(self, monitor, node, old_head, new_head_block, depth: int) -> None:
        """The node abandoned *depth* blocks of its previous canonical chain."""


class InvariantMonitor:
    """Registry of auditors fed from commit-time events.

    Install with :meth:`install` (sets ``sim.invariant_monitor``); every
    node then feeds it alongside the span tracer.  ``system`` is the
    :class:`~repro.hierarchy.network.HierarchicalSystem` under audit —
    auditors that need cross-subnet state (supply, membership) no-op
    without it, so a bare ``InvariantMonitor(sim=sim, auditors=[...])``
    works for unit tests.
    """

    def __init__(
        self,
        system=None,
        sim=None,
        auditors: Optional[list] = None,
        check_interval: int = 10,
        recorder=None,
        max_bundles: int = 8,
    ) -> None:
        if sim is None:
            if system is None:
                raise ValueError("InvariantMonitor needs a system or a sim")
            sim = system.sim
        self.system = system
        self.sim = sim
        self.check_interval = max(1, check_interval)
        self.recorder = recorder
        self.max_bundles = max_bundles
        self.auditors = list(
            auditors
            if auditors is not None
            else (
                SupplyAuditor(),
                CheckpointAuditor(),
                ExactlyOnceAuditor(),
                FinalityAuditor(),
                MembershipAuditor(),
            )
        )
        self.violations: list[InvariantViolation] = []
        self._seen: set = set()
        self._commit_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def install(self) -> "InvariantMonitor":
        """Attach to the simulator; nodes start feeding commits at once."""
        self.sim.invariant_monitor = self
        return self

    def uninstall(self) -> None:
        if self.sim.invariant_monitor is self:
            self.sim.invariant_monitor = None

    # ------------------------------------------------------------------
    # Feed (duck-typed calls from NodeRuntime)
    # ------------------------------------------------------------------
    def on_block_commit(self, node, block, events) -> None:
        for auditor in self.auditors:
            auditor.on_block_commit(self, node, block, events)
        count = self._commit_counts.get(node.subnet_id, 0) + 1
        self._commit_counts[node.subnet_id] = count
        if count % self.check_interval == 0:
            for auditor in self.auditors:
                auditor.on_periodic(self, node)

    def on_reorg(self, node, old_head, new_head_block, depth: int) -> None:
        for auditor in self.auditors:
            auditor.on_reorg(self, node, old_head, new_head_block, depth)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self, auditor: str, subnet: str, description: str, dedup_key=None
    ) -> Optional[InvariantViolation]:
        """Record one violation; duplicates (same dedup key) are dropped.

        The first committing node wins, like the span tracer's
        deduplication, so the violation list is deterministic.
        """
        key = (auditor, subnet, dedup_key if dedup_key is not None else description)
        if key in self._seen:
            return None
        self._seen.add(key)
        violation = InvariantViolation(
            seq=len(self.violations),
            time=self.sim.now,
            auditor=auditor,
            subnet=subnet,
            description=description,
        )
        self.violations.append(violation)
        self.sim.metrics.counter("invariant.violations").inc()
        self.sim.metrics.counter(f"invariant.{auditor}.violations").inc()
        if self.recorder is not None and len(self.recorder.bundles) < self.max_bundles:
            self.recorder.dump(violation=violation)
        return violation

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def violations_for(self, auditor: str) -> list:
        return [v for v in self.violations if v.auditor == auditor]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> dict:
        """Plain-data overview used by the exporters and the report CLI."""
        by_auditor: dict[str, int] = {}
        for violation in self.violations:
            by_auditor[violation.auditor] = by_auditor.get(violation.auditor, 0) + 1
        return {
            "auditors": [a.name for a in self.auditors],
            "violations": len(self.violations),
            "by_auditor": by_auditor,
            "latest": self.violations[-1].as_dict() if self.violations else None,
        }


# ======================================================================
# Auditor 1 — firewall/supply conservation (§II)
# ======================================================================
class SupplyAuditor(Auditor):
    """Incremental :func:`~repro.hierarchy.firewall.audit_system`.

    Per-child books on every K-th commit (released ≤ injected, circulating
    = injected − released ≥ 0, frozen-pool solvency, child mint bound) plus
    two live-only signals: a ``firewall.refused`` event means someone just
    tried to extract beyond the circulating supply, and cumulative
    ``released_total`` must never exceed what the child *subtree* actually
    burned — the check that catches a forged checkpoint even when its claim
    stays within the circulating supply.
    """

    name = "supply"

    def on_block_commit(self, monitor, node, block, events) -> None:
        for kind, payload in events:
            if kind == "firewall.refused":
                via_child, value, circulating = payload
                monitor.record(
                    self.name,
                    node.subnet_id,
                    f"firewall engaged: bottom-up release of {value} from "
                    f"{via_child} exceeds its circulating supply {circulating} "
                    "— forged or replayed extraction attempt",
                    dedup_key=("refused", via_child),
                )

    def on_periodic(self, monitor, node) -> None:
        system = monitor.system
        vm = node.vm
        sca_balance = vm.balance_of(SCA_ADDRESS)
        total_backing = 0
        prefix = f"actor/{SCA_ADDRESS.raw}/child/"
        for key in vm.state.keys(prefix):
            child_path = key[len(prefix):]
            record = vm.state.get(key)
            injected = record["injected_total"]
            released = record["released_total"]
            circulating = record["circulating"]
            total_backing += record["collateral"] + circulating
            if released > injected:
                monitor.record(
                    self.name, node.subnet_id,
                    f"{child_path}: released {released} exceeds injected "
                    f"{injected} — §II firewall bound breached",
                    dedup_key=("released>injected", child_path),
                )
            if circulating != injected - released or circulating < 0:
                monitor.record(
                    self.name, node.subnet_id,
                    f"{child_path}: circulating {circulating} != injected "
                    f"{injected} - released {released}",
                    dedup_key=("ledger", child_path),
                )
            if system is not None and record["status"] != "killed":
                self._check_live_child(monitor, node, child_path, record)
        if sca_balance < total_backing:
            monitor.record(
                self.name, node.subnet_id,
                f"SCA pool {sca_balance} cannot back collateral+circulating "
                f"{total_backing}",
                dedup_key=("solvency",),
            )

    def _check_live_child(self, monitor, node, child_path: str, record: dict) -> None:
        """Cross-check the parent's books against the child's live chain."""
        system = monitor.system
        child_id = SubnetID(child_path)
        if child_id in system.nodes_by_subnet:
            minted = max(
                n.vm.total_minted for n in system.nodes_by_subnet[child_id]
            )
            if minted > record["injected_total"]:
                monitor.record(
                    self.name, node.subnet_id,
                    f"{child_path}: minted {minted} exceeds injected "
                    f"{record['injected_total']}",
                    dedup_key=("mint", child_path),
                )
        # Every genuine bottom-up release was burned somewhere in the
        # child's subtree first (relayed metas burn at their origin, Fig. 3).
        subtree = [
            s for s in system.nodes_by_subnet
            if s == child_id or child_id.is_ancestor_of(s)
        ]
        if not subtree:
            return  # subnet chain not instantiated locally; cannot see burns
        burned = sum(
            max(n.vm.total_burned for n in system.nodes_by_subnet[s])
            for s in subtree
        )
        if record["released_total"] > burned:
            monitor.record(
                self.name, node.subnet_id,
                f"{child_path}: released {record['released_total']} exceeds "
                f"the {burned} ever burned in its subtree — forged bottom-up "
                "value",
                dedup_key=("released>burned", child_path),
            )


# ======================================================================
# Auditor 2 — checkpoint-chain integrity (§III-B)
# ======================================================================
class CheckpointAuditor(Auditor):
    """Walks each child's committed-checkpoint history at the parent.

    Every committed checkpoint must chain (``prev``) from the previously
    committed one, advance the window and epoch strictly, and carry
    signatures that satisfy the SA's policy over its validator set.
    """

    name = "checkpoint-chain"

    def __init__(self) -> None:
        # (parent subnet, child path) -> {"window", "cid", "epoch"}
        self._chains: dict[tuple, dict] = {}

    def on_block_commit(self, monitor, node, block, events) -> None:
        for kind, payload in events:
            if kind == "checkpoint.committed":
                child_path, _ckpt_hex = payload
                self._verify_chain(monitor, node, child_path)

    def _verify_chain(self, monitor, node, child_path: str) -> None:
        state = node.vm.state
        record = state.get(f"actor/{SCA_ADDRESS.raw}/child/{child_path}")
        if record is None:
            return
        sa_raw = record["sa_addr"]
        last_window = state.get(f"actor/{sa_raw}/last_ckpt_window", -1)
        key = (node.subnet_id, child_path)
        tracked = self._chains.setdefault(
            key, {"window": -1, "cid": _ZERO_CID_HEX, "epoch": -1}
        )
        window = tracked["window"] + 1
        while window <= last_window:
            signed = state.get(f"actor/{sa_raw}/ckpt_history/{window}")
            if signed is None:
                window += 1  # window never committed (superseded); no link
                continue
            checkpoint = signed.checkpoint
            if checkpoint.prev.hex() != tracked["cid"]:
                monitor.record(
                    self.name, node.subnet_id,
                    f"{child_path} window {window}: prev {checkpoint.prev.hex()[:16]} "
                    f"does not chain from last committed {tracked['cid'][:16]}",
                    dedup_key=("prev", child_path, window),
                )
            if checkpoint.epoch <= tracked["epoch"]:
                monitor.record(
                    self.name, node.subnet_id,
                    f"{child_path} window {window}: epoch {checkpoint.epoch} "
                    f"not greater than previous epoch {tracked['epoch']}",
                    dedup_key=("epoch", child_path, window),
                )
            if not self._policy_satisfied(state, sa_raw, child_path, signed):
                monitor.record(
                    self.name, node.subnet_id,
                    f"{child_path} window {window}: committed checkpoint does "
                    "not satisfy the SA signature policy",
                    dedup_key=("policy", child_path, window),
                )
            tracked = {
                "window": window,
                "cid": checkpoint.cid.hex(),
                "epoch": checkpoint.epoch,
            }
            window += 1
        self._chains[key] = tracked

    @staticmethod
    def _policy_satisfied(state, sa_raw: str, child_path: str, signed) -> bool:
        """Re-run the SA's signature check against its current registry."""
        policy = state.get(f"actor/{sa_raw}/policy")
        validators = state.get(f"actor/{sa_raw}/validators", {})
        if policy is None:
            return True
        payload = signed.checkpoint.cid.hex()
        if policy.kind == "threshold":
            signatures = signed.signatures
            if not isinstance(signatures, ThresholdSignature):
                return False
            scheme = threshold_scheme_for(signatures.group_id)
            if scheme is None or signatures.group_id != f"tss:{child_path}":
                return False
            return scheme.verify(signatures, payload)
        signatures = signed.signatures
        if not isinstance(signatures, tuple):
            signatures = (signatures,)
        threshold = 1 if policy.kind == "single" else policy.threshold
        return verify_multisig(
            MultiSignature(
                signatures=tuple(sorted(signatures, key=lambda s: s.signer))
            ),
            payload,
            [Address(a) for a in validators],
            threshold,
        )


# ======================================================================
# Auditor 3 — exactly-once cross-msg application (§IV-A)
# ======================================================================
class ExactlyOnceAuditor(Auditor):
    """No CrossMsg CID delivered twice on one chain; nonces monotone.

    Re-observations of the *same* block by other validators of the subnet
    deduplicate; a second delivery in a *different* block is a violation
    when the two blocks lie on one chain, and a ``fork_replays`` metric
    (not a violation) when they lie on rival forks — commit listeners get
    no un-commit signal, so fork-capable engines legitimately re-apply
    along the winning branch.
    """

    name = "exactly-once"

    def __init__(self) -> None:
        # (subnet, msg cid) -> (block cid, height) of the first delivery
        self._delivered: dict[tuple, tuple] = {}
        # route key -> {"max": int, "cids": {nonce: cid}}
        self._routes: dict[tuple, dict] = {}

    def on_block_commit(self, monitor, node, block, events) -> None:
        for kind, payload in events:
            if kind == "crossmsg.delivered":
                _to_addr, _value, cid = payload
                self._check_delivery(monitor, node, block, cid)
            elif kind == "crossmsg.topdown":
                child_path, nonce, _value, cid, _to, _addr, _mkind = payload
                self._check_nonce(
                    monitor, node, ("topdown", node.subnet_id, child_path),
                    nonce, cid,
                )
            elif kind == "meta.queued":
                bu_nonce, msgs_cid = payload
                self._check_nonce(
                    monitor, node, ("bottomup", node.subnet_id), bu_nonce, msgs_cid
                )

    def _check_delivery(self, monitor, node, block, cid: str) -> None:
        key = (node.subnet_id, cid)
        block_cid = block.cid if block is not None else None
        first = self._delivered.get(key)
        if first is None:
            height = block.height if block is not None else None
            self._delivered[key] = (block_cid, height)
            return
        first_cid, first_height = first
        if block_cid is None or first_cid is None or block_cid == first_cid:
            return  # the same block, seen from another validator
        store = getattr(node, "store", None)
        same_chain = store is not None and (
            store.is_extension(first_cid, block_cid)
            or store.is_extension(block_cid, first_cid)
        )
        if same_chain:
            monitor.record(
                self.name, node.subnet_id,
                f"cross-msg {cid[:16]} applied twice on one chain "
                f"(heights {first_height} and "
                f"{block.height if block is not None else '?'})",
                dedup_key=("twice", cid),
            )
        else:
            monitor.sim.metrics.counter("invariant.exactly_once.fork_replays").inc()

    def _check_nonce(self, monitor, node, route: tuple, nonce: int, cid: str) -> None:
        entry = self._routes.setdefault(route, {"max": None, "cids": {}})
        known = entry["cids"].get(nonce)
        if known == cid:
            return  # re-observation of the same enqueue
        if known is not None:
            monitor.record(
                self.name, node.subnet_id,
                f"route {route}: nonce {nonce} reused with a different "
                f"payload ({known[:16]} then {cid[:16]})",
                dedup_key=("nonce-reuse", route, nonce),
            )
            return
        entry["cids"][nonce] = cid
        if entry["max"] is not None:
            if nonce <= entry["max"]:
                monitor.record(
                    self.name, node.subnet_id,
                    f"route {route}: nonce went backwards ({nonce} after "
                    f"{entry['max']})",
                    dedup_key=("nonce-regress", route, nonce),
                )
            elif nonce != entry["max"] + 1:
                # A forward gap is suspicious but can also be a monitor
                # installed mid-stream; count it, don't convict.
                monitor.sim.metrics.counter("invariant.exactly_once.nonce_gaps").inc()
        entry["max"] = nonce if entry["max"] is None else max(entry["max"], nonce)


# ======================================================================
# Auditor 4 — per-subnet finality safety
# ======================================================================
class FinalityAuditor(Auditor):
    """No two *final* blocks at one height; no reorg past finality depth.

    Final height mirrors the checkpoint service: ``head - finality_depth``
    for fork-capable engines, the head itself otherwise.  The per-height
    map is shared across all nodes of a subnet, so diverging *final*
    prefixes between validators surface too (e.g. a quorum-less engine
    committing solo blocks under a partition — a genuine safety breach of
    that configuration, not a monitor artefact).
    """

    name = "finality"

    def __init__(self) -> None:
        self._final: dict[tuple, str] = {}  # (subnet, height) -> block cid hex
        self._checked: dict[tuple, int] = {}  # (subnet, node) -> height

    @staticmethod
    def _finality_lag(node) -> int:
        engine = getattr(node, "engine", None)
        if engine is None:
            return 0
        return engine.params.finality_depth if engine.SUPPORTS_FORKS else 0

    def on_block_commit(self, monitor, node, block, events) -> None:
        store = getattr(node, "store", None)
        if store is None or block is None:
            return
        final_height = store.height - self._finality_lag(node)
        key = (node.subnet_id, node.node_id)
        height = self._checked.get(key, 0) + 1  # genesis is trivially agreed
        while height <= final_height:
            final_block = store.block_at_height(height)
            if final_block is None:
                break
            cid = final_block.cid.hex()
            shared = (node.subnet_id, height)
            recorded = self._final.get(shared)
            if recorded is None:
                self._final[shared] = cid
            elif recorded != cid:
                monitor.record(
                    self.name, node.subnet_id,
                    f"two final blocks at height {height}: {recorded[:16]} "
                    f"and {cid[:16]}",
                    dedup_key=("conflict", height),
                )
            self._checked[key] = height
            height += 1

    def on_reorg(self, monitor, node, old_head, new_head_block, depth: int) -> None:
        lag = self._finality_lag(node)
        if depth > lag:
            monitor.record(
                self.name, node.subnet_id,
                f"reorg abandoned {depth} blocks, deeper than the finality "
                f"depth {lag}",
                dedup_key=("deep-reorg", node.node_id, new_head_block.height),
            )


# ======================================================================
# Auditor 5 — parent/child membership consistency (§III-A)
# ======================================================================
class MembershipAuditor(Auditor):
    """The SA validator registry must mirror the live validator cluster."""

    name = "membership"

    def on_periodic(self, monitor, node) -> None:
        system = monitor.system
        if system is None:
            return
        state = node.vm.state
        prefix = f"actor/{SCA_ADDRESS.raw}/child/"
        for key in state.keys(prefix):
            child_path = key[len(prefix):]
            record = state.get(key)
            if record["status"] != "active":
                continue
            child_id = SubnetID(child_path)
            if child_id not in system.nodes_by_subnet:
                continue
            registered = set(state.get(f"actor/{record['sa_addr']}/validators", {}))
            live = {
                n.keypair.address.raw for n in system.nodes_by_subnet[child_id]
            }
            if registered != live:
                missing = sorted(registered - live)
                extra = sorted(live - registered)
                monitor.record(
                    self.name, node.subnet_id,
                    f"{child_path}: SA registry and live cluster diverge "
                    f"(registered-only={missing}, live-only={extra})",
                    dedup_key=(
                        "membership", child_path,
                        tuple(missing), tuple(extra),
                    ),
                )

"""Periodic per-subnet health sampling.

:class:`HealthProbe` rides the simulator's ``every()`` timer and samples
each subnet's vital signs onto :class:`~repro.sim.metrics.TimeSeries`:

- ``health.<subnet>.height`` — chain height of a representative node;
- ``health.<subnet>.mempool`` — pending user messages;
- ``health.<subnet>.pending_crossmsgs`` — cross-msg pool depth
  (unapplied top-down messages + unresolved bottom-up metas);
- ``health.<subnet>.checkpoint_lag`` — windows sealed locally but not yet
  recorded by the parent's SA (0 = fully anchored).

Sampling is read-only: it never touches chain state, RNG streams or the
trace log, so enabling the probe cannot change the determinism digest.
"""

from __future__ import annotations

from typing import Optional

from repro.hierarchy.gateway import SCA_ADDRESS

FIELDS = ("height", "mempool", "pending_crossmsgs", "checkpoint_lag")


class HealthProbe:
    """Samples per-subnet health onto the sim's metrics time series."""

    def __init__(self, system, interval: float = 1.0) -> None:
        self.system = system
        self.sim = system.sim
        self.interval = interval
        self.latest: dict[str, dict] = {}
        self._stop = None
        self._listeners: list = []

    def on_sample(self, callback) -> None:
        """Call *callback(latest)* after every completed sample round."""
        self._listeners.append(callback)

    def start(self) -> "HealthProbe":
        if self._stop is None:
            self._stop = self.sim.every(
                self.interval, self.sample, label="telemetry:health", on_error="log"
            )
        return self

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None

    # ------------------------------------------------------------------
    def sample(self) -> dict:
        """Take one sample of every subnet; returns {path: sample}."""
        now = self.sim.now
        metrics = self.sim.metrics
        for subnet in sorted(self.system.nodes_by_subnet):
            node = self.system.nodes_by_subnet[subnet][0]
            path = subnet.path
            crosspool = getattr(node, "crosspool", None)
            pending = 0
            if crosspool is not None:
                pending = crosspool.pending_topdown + crosspool.pending_bottomup
            sample = {
                "time": now,
                "height": node.head().height,
                "mempool": len(node.mempool),
                "pending_crossmsgs": pending,
                "checkpoint_lag": self._checkpoint_lag(node),
            }
            self.latest[path] = sample
            for field in FIELDS:
                value = sample[field]
                if value is not None:
                    metrics.timeseries(f"health.{path}.{field}").record(now, value)
        for listener in self._listeners:
            listener(self.latest)
        return self.latest

    def _checkpoint_lag(self, node) -> Optional[int]:
        """Windows this subnet has sealed beyond what its parent recorded."""
        parent = getattr(node, "parent_node", None)
        service = getattr(node, "checkpoints", None)
        if parent is None or service is None:
            return None  # the rootnet anchors to nothing
        sealed = node.vm.state.get(
            f"actor/{SCA_ADDRESS.raw}/last_window_sealed", -1
        )
        committed = parent.vm.state.get(
            f"actor/{service.config.sa_addr}/last_ckpt_window", -1
        )
        return max(sealed - committed, 0)

"""Run-report CLI: ``python -m repro.telemetry.report <dump.json>``.

Renders a human-readable summary from a telemetry JSON dump produced by
:func:`repro.telemetry.export.telemetry_snapshot` / ``write_json`` (the
benchmarks write one next to their ``BENCH_*.json``): per-hop cross-net
latency percentiles by hierarchy level and direction, end-to-end latency
by route shape, checkpoint anchoring lag, the hottest dispatch labels,
and the final health sample of every subnet.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.analysis.report import Table

_HOP_PREFIXES = (
    ("xnet.hop.submit.", "submit"),
    ("xnet.hop.topdown.", "topdown"),
    ("xnet.hop.bottomup.", "bottomup"),
)


def _fmt(value) -> str:
    if value is None:
        return "-"
    return value


def _latency_rows(histograms: dict) -> list:
    """(kind, level, summary) rows for every per-level hop histogram."""
    rows = []
    for name in sorted(histograms):
        for prefix, kind in _HOP_PREFIXES:
            if name.startswith(prefix) and name[len(prefix):].startswith("L"):
                rows.append((kind, name[len(prefix):], histograms[name]))
    return rows


def _invariant_counters(counters: dict) -> dict:
    return {
        name: counters[name]
        for name in sorted(counters)
        if name.startswith("invariant.")
    }


def _cache_stats(counters: dict, gauges: dict) -> dict:
    """CID-cache counters and state-root work gauges (PR 5 hot paths)."""
    stats = {
        name: counters[name]
        for name in sorted(counters)
        if name.startswith("cid.cache.")
    }
    hits = stats.get("cid.cache.hits")
    misses = stats.get("cid.cache.misses")
    if hits is not None and misses is not None and hits + misses:
        stats["cid.cache.hit_rate"] = hits / (hits + misses)
    for name in sorted(gauges):
        if name.startswith("state.root.") or name.startswith("state.tree."):
            stats[name] = gauges[name]
    return stats


def summarize(snapshot: dict) -> dict:
    """The report's content as plain data — what ``--json`` emits."""
    histograms = snapshot.get("histograms", {})
    counters = snapshot.get("counters", {}) or {}
    gauges = snapshot.get("gauges", {}) or {}
    return {
        "sim": snapshot.get("sim", {}),
        "wall_seconds": snapshot.get("wall_seconds"),
        "spans": snapshot.get("spans"),
        "invariants": snapshot.get("invariants"),
        "invariant_counters": _invariant_counters(counters),
        "caches": _cache_stats(counters, gauges),
        "profile": snapshot.get("profile"),
        "rounds": snapshot.get("rounds"),
        "round_histograms": {
            name: histograms[name]
            for name in sorted(histograms)
            if name.startswith("consensus.round.")
        },
        "hops": [
            {"hop": kind, "level": level, **summary}
            for kind, level, summary in _latency_rows(histograms)
        ],
        "e2e": {
            name[len("xnet.e2e."):]: histograms[name]
            for name in sorted(histograms)
            if name.startswith("xnet.e2e.")
        },
        "checkpoints": {
            name: histograms[name]
            for name in sorted(histograms)
            if name.startswith("checkpoint.lag") or name.startswith("checkpoint.hop.")
        },
        "dispatch": (snapshot.get("dispatch") or [])[:10],
        "health": snapshot.get("health"),
        "trace_log": snapshot.get("trace_log"),
    }


def render(snapshot: dict) -> str:
    sections = []
    sim = snapshot.get("sim", {})
    header = (
        f"telemetry report — sim time {sim.get('now', '?')}s, "
        f"{sim.get('events_executed', '?')} events, seed {sim.get('seed', '?')}"
    )
    if snapshot.get("wall_seconds") is not None:
        header += f", wall {snapshot['wall_seconds']:.2f}s"
    sections.append(header)

    spans = snapshot.get("spans")
    if spans:
        sections.append(
            f"cross-net spans: {spans.get('traces', 0)} traced, "
            f"{spans.get('delivered', 0)} delivered, "
            f"{spans.get('failed', 0)} failed, "
            f"{spans.get('in_flight', 0)} in flight; "
            f"{spans.get('checkpoints', 0)} checkpoints observed"
        )

    invariants = snapshot.get("invariants")
    if invariants:
        line = (
            f"invariants: {invariants.get('violations', 0)} violation(s) across "
            f"{len(invariants.get('auditors', []))} auditors"
        )
        by_auditor = invariants.get("by_auditor") or {}
        if by_auditor:
            detail = ", ".join(f"{k}={v}" for k, v in sorted(by_auditor.items()))
            line += f" ({detail})"
        latest = invariants.get("latest")
        if latest:
            line += (
                f"\nlatest: [{latest.get('auditor')}] t={latest.get('time')} "
                f"{latest.get('subnet')}: {latest.get('description')}"
            )
        sections.append(line)

    counters = snapshot.get("counters", {}) or {}
    gauges = snapshot.get("gauges", {}) or {}

    invariant_counters = _invariant_counters(counters)
    if invariant_counters:
        table = Table("invariant counters", ["counter", "value"])
        for name, value in invariant_counters.items():
            table.add_row(name, value)
        sections.append(table.render())

    caches = _cache_stats(counters, gauges)
    if caches:
        table = Table("caches & state-root work", ["metric", "value"])
        for name, value in caches.items():
            table.add_row(name, value)
        sections.append(table.render())

    profile = snapshot.get("profile")
    if profile:
        labels = profile.get("labels") or {}
        table = Table(
            f"CPU profile — {profile.get('samples', 0)} samples "
            f"@ {profile.get('interval_s', '?')}s over "
            f"{(profile.get('active_s') or 0.0):.2f}s wall",
            ["label", "samples", "cpu %", "alloc KiB", "hottest frame"],
        )
        for label, row in list(labels.items())[:12]:
            top = row.get("top_frames") or []
            table.add_row(
                label,
                row.get("samples", 0),
                row.get("cpu_share", 0.0) * 100,
                row.get("alloc_bytes", 0) / 1024,
                top[0][0] if top else "-",
            )
        sections.append(table.render())

    histograms = snapshot.get("histograms", {})

    rounds = snapshot.get("rounds")
    if rounds and rounds.get("subnets"):
        table = Table(
            "consensus rounds per subnet",
            ["subnet", "frontier", "quorum", "prevote", "precommit",
             "skips", "timeouts", "rounds/height p95"],
        )
        for path in sorted(rounds["subnets"]):
            entry = rounds["subnets"][path]
            counts = entry.get("counts") or {}
            per_height = histograms.get(f"consensus.round.{path}.per_height") or {}
            frontier = (
                f"h{entry.get('frontier_height')} r{entry.get('frontier_round')}"
                if entry.get("frontier_height") is not None else "-"
            )
            table.add_row(
                path, frontier,
                _fmt(entry.get("quorum_power")),
                _fmt(entry.get("prevote_power")),
                _fmt(entry.get("precommit_power")),
                counts.get("round_skip", 0),
                counts.get("timeout", 0),
                _fmt(per_height.get("p95")),
            )
        sections.append(table.render())

    hop_rows = _latency_rows(histograms)
    if hop_rows:
        table = Table(
            "cross-net hop latency by hierarchy level (simulated seconds)",
            ["hop", "level", "count", "p50", "p95", "p99", "max"],
        )
        for kind, level, summary in hop_rows:
            table.add_row(
                kind, level, summary["count"], _fmt(summary["p50"]),
                _fmt(summary["p95"]), _fmt(summary["p99"]), _fmt(summary["max"]),
            )
        sections.append(table.render())

    e2e = {
        name[len("xnet.e2e."):]: histograms[name]
        for name in sorted(histograms)
        if name.startswith("xnet.e2e.")
    }
    if e2e:
        table = Table(
            "end-to-end cross-net latency by route shape (simulated seconds)",
            ["route", "count", "p50", "p95", "p99", "max"],
        )
        for shape, summary in e2e.items():
            table.add_row(
                shape, summary["count"], _fmt(summary["p50"]),
                _fmt(summary["p95"]), _fmt(summary["p99"]), _fmt(summary["max"]),
            )
        sections.append(table.render())

    ckpt = {
        name: histograms[name]
        for name in sorted(histograms)
        if name.startswith("checkpoint.lag") or name.startswith("checkpoint.hop.")
    }
    if ckpt:
        table = Table(
            "checkpoint anchoring (simulated seconds)",
            ["metric", "count", "p50", "p95", "p99", "max"],
        )
        for name, summary in ckpt.items():
            table.add_row(
                name, summary["count"], _fmt(summary["p50"]),
                _fmt(summary["p95"]), _fmt(summary["p99"]), _fmt(summary["max"]),
            )
        sections.append(table.render())

    dispatch = snapshot.get("dispatch") or []
    if dispatch:
        table = Table(
            "hottest dispatch labels (wall clock)",
            ["label", "events", "wall_s", "mean_us"],
        )
        for row in dispatch[:10]:
            table.add_row(
                row["label"], row["events"], row["wall_s"], row["mean_s"] * 1e6
            )
        sections.append(table.render())

    health = snapshot.get("health")
    if health:
        table = Table(
            "final health sample per subnet",
            ["subnet", "height", "mempool", "pending xnet", "ckpt lag"],
        )
        for path in sorted(health):
            sample = health[path]
            table.add_row(
                path, sample.get("height"), sample.get("mempool"),
                sample.get("pending_crossmsgs"), _fmt(sample.get("checkpoint_lag")),
            )
        sections.append(table.render())

    log = snapshot.get("trace_log")
    if log:
        line = f"trace log: {log.get('records', 0)} records"
        if log.get("dropped"):
            line += f" ({log['dropped']} dropped at capacity)"
        sections.append(line)

    return "\n\n".join(sections)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Render a run summary from a telemetry JSON dump.",
    )
    parser.add_argument("dump", help="path to a telemetry JSON dump (see repro.telemetry.export.write_json)")
    parser.add_argument(
        "--json", action="store_true",
        help="emit the parsed summary as JSON instead of tables",
    )
    args = parser.parse_args(argv)
    try:
        with open(args.dump, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read telemetry dump {args.dump!r}: {exc}", file=sys.stderr)
        return 1
    if snapshot.get("schema") != "repro.telemetry/v1":
        print(
            f"warning: unrecognised schema {snapshot.get('schema')!r}; "
            "rendering best-effort", file=sys.stderr,
        )
    try:
        if args.json:
            print(json.dumps(summarize(snapshot), indent=2, allow_nan=False))
        else:
            print(render(snapshot))
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early; suppress the
        # interpreter-shutdown flush error and exit cleanly.
        sys.stdout = open(os.devnull, "w", encoding="utf-8")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Causal span tracing, health probes, invariant monitors and exporters.

Everything here is an *observer* of the simulation: tracer, probe,
invariant monitor and flight recorder write only to ``sim.metrics``
(never the trace log) and consume no RNG, so enabling telemetry cannot
change the determinism digest.  See DESIGN.md § Observability.
"""

from repro.telemetry.export import (
    telemetry_snapshot,
    to_chrome_trace,
    to_prometheus,
    write_chrome_trace,
    write_json,
    write_prometheus,
)
from repro.telemetry.health import HealthProbe
from repro.telemetry.monitor import (
    CheckpointAuditor,
    ExactlyOnceAuditor,
    FinalityAuditor,
    InvariantMonitor,
    InvariantViolation,
    MembershipAuditor,
    SupplyAuditor,
)
from repro.telemetry.profiler import SamplingProfiler
from repro.telemetry.recorder import FlightRecorder
from repro.telemetry.rounds import (
    RoundTracer,
    StallDiagnoser,
    render_stall_report,
)
from repro.telemetry.spans import SpanTracer, route_shape, subnet_level


def __getattr__(name):
    # Lazy: importing these eagerly would shadow `python -m
    # repro.telemetry.profdiff` (runpy warns when the CLI module is
    # already in sys.modules via its package).
    if name in ("diff_profiles", "render_diff"):
        from repro.telemetry import profdiff

        return getattr(profdiff, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CheckpointAuditor",
    "ExactlyOnceAuditor",
    "FinalityAuditor",
    "FlightRecorder",
    "HealthProbe",
    "InvariantMonitor",
    "InvariantViolation",
    "MembershipAuditor",
    "RoundTracer",
    "SamplingProfiler",
    "SpanTracer",
    "StallDiagnoser",
    "SupplyAuditor",
    "diff_profiles",
    "render_diff",
    "render_stall_report",
    "route_shape",
    "subnet_level",
    "telemetry_snapshot",
    "to_chrome_trace",
    "to_prometheus",
    "write_chrome_trace",
    "write_json",
    "write_prometheus",
]

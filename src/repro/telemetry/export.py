"""Telemetry exporters: JSON dump, Prometheus text format, Chrome trace.

Three consumers, three formats:

- :func:`telemetry_snapshot` / :func:`write_json` — one JSON document with
  everything a post-hoc report needs (metrics, dispatch profile, span and
  health summaries).  ``python -m repro.telemetry.report`` renders it.
- :func:`to_prometheus` / :func:`write_prometheus` — Prometheus text
  exposition (counters, gauges, histogram summaries with quantile labels)
  for scraping or offline ``promtool`` analysis.
- :func:`to_chrome_trace` / :func:`write_chrome_trace` — Chrome
  trace-event JSON loadable in Perfetto (https://ui.perfetto.dev): one
  track per subnet carrying the cross-net hop spans and checkpoint
  anchoring spans (simulated time), plus a DispatchBus profile track
  (wall-clock CPU attribution per event label).
"""

from __future__ import annotations

import json
import re
from typing import Optional

from repro.sim.metrics import _json_safe

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def telemetry_snapshot(
    sim,
    tracer=None,
    probe=None,
    monitor=None,
    profiler=None,
    wall_seconds: Optional[float] = None,
    extra: Optional[dict] = None,
    rounds=None,
) -> dict:
    """One JSON-safe document describing a finished (or running) run."""
    metrics = sim.metrics
    snapshot = {
        "schema": "repro.telemetry/v1",
        "sim": {
            "now": sim.now,
            "events_executed": sim.events_executed,
            "seed": sim.seed,
        },
        "wall_seconds": wall_seconds,
        "counters": {n: c.value for n, c in sorted(metrics.counters.items())},
        "gauges": {n: _json_safe(g.value) for n, g in sorted(metrics.gauges.items())},
        "histograms": {n: h.summary() for n, h in sorted(metrics.histograms.items())},
        "series": {
            n: {
                "points": len(s.points),
                "first": list(s.points[0]) if s.points else None,
                "last": list(s.points[-1]) if s.points else None,
            }
            for n, s in sorted(metrics.series.items())
        },
        "dispatch": sim.dispatch.summary(),
        "trace_log": {"records": len(sim.trace), "dropped": sim.trace.dropped},
    }
    if tracer is not None:
        snapshot["spans"] = tracer.summary()
    if probe is not None:
        snapshot["health"] = {path: dict(s) for path, s in sorted(probe.latest.items())}
    if monitor is not None:
        snapshot["invariants"] = monitor.summary()
    if profiler is not None:
        snapshot["profile"] = profiler.snapshot()
    if rounds is None:
        rounds = getattr(sim, "round_tracer", None)
    if rounds is not None:
        snapshot["rounds"] = rounds.summary()
    if extra:
        snapshot["extra"] = extra
    return snapshot


def write_json(path: str, snapshot: dict) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=False, allow_nan=False)
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
#: The declared metric surface: every family the system emits, keyed by a
#: dotted name pattern (``*`` = one interpolated segment, e.g. a subnet
#: path; a trailing ``*`` covers one or more), mapping to its Prometheus
#: type and HELP text.  ``repro.lint``'s MET001 cross-checks this table
#: against every emit site in the tree — both ways — so keep it in sync
#: when adding or renaming metrics.  Interpolated values (subnet paths,
#: node ids, dispatch labels) never contain dots.
METRIC_CATALOG: dict = {
    # net/transport
    "net.sent": ("counter", "messages handed to the transport"),
    "net.delivered": ("counter", "messages delivered to a registered peer"),
    "net.latency": ("summary", "per-message simulated delivery latency"),
    "net.partitioned_drops": ("counter", "messages dropped by an active partition"),
    "net.lost": ("counter", "messages dropped by random loss"),
    # net/gossip
    "gossip.published": ("counter", "pubsub messages published"),
    "gossip.delivered": ("counter", "pubsub deliveries to subscriber handlers"),
    "gossip.latency": ("summary", "publish-to-handler simulated latency"),
    # chain/runtime (per-subnet)
    "chain.*.blocks": ("gauge", "blocks committed (event series)"),
    "chain.*.txs": ("gauge", "transactions committed (event series)"),
    "chain.*.invalid_blocks": ("counter", "blocks rejected by validation"),
    "chain.*.reorgs": ("counter", "chain reorganisations applied"),
    "chain.*.reorg.depth": ("summary", "depth of applied reorgs"),
    "chain.*.state_mismatch": ("counter", "blocks rejected on state-root mismatch"),
    "chain.*.sync_blocks": ("counter", "blocks applied via range sync"),
    "chain.*.sync_failed": ("counter", "failed block-range sync attempts"),
    # state
    "state.root.buckets_rehashed": ("gauge", "buckets rehashed by the last incremental root"),
    "state.tree.layer_depth": ("gauge", "depth of the state hash tree"),
    # consensus engines (per-subnet)
    "consensus.*.proposed": ("counter", "blocks proposed by this engine"),
    "consensus.*.mined": ("counter", "blocks mined (PoW)"),
    "consensus.*.accepted": ("counter", "proposals accepted"),
    "consensus.*.rejected": ("counter", "proposals rejected"),
    "consensus.*.withheld": ("counter", "proposals withheld by a byzantine engine"),
    "consensus.*.votes_withheld": ("counter", "votes withheld by a byzantine engine"),
    "consensus.*.equivocations_sent": ("counter", "equivocating proposals sent"),
    "consensus.*.equivocations_observed": ("counter", "equivocations observed"),
    "consensus.*.round_skips": ("counter", "rounds skipped on timeout"),
    "consensus.*.rounds": ("counter", "consensus rounds started"),
    "consensus.*.caught_up": ("counter", "catch-up syncs completed"),
    "consensus.*.committed": ("counter", "blocks committed by consensus"),
    "consensus.*.block_interval": ("summary", "inter-block simulated time"),
    "consensus.*.commit_round": ("summary", "round number at commit"),
    # consensus round tracer (per-subnet)
    "consensus.round.*.duration": ("summary", "simulated duration of a round"),
    "consensus.round.*.per_height": ("summary", "rounds needed per committed height"),
    "consensus.round.*.skips": ("counter", "round skips observed by the tracer"),
    "consensus.round.*.timeouts": ("counter", "round timeouts observed by the tracer"),
    "consensus.round.*.locks": ("counter", "value locks observed by the tracer"),
    "consensus.round.*.height": ("gauge", "current working height"),
    "consensus.round.*.number": ("gauge", "current round number"),
    "consensus.round.*.quorum_power": ("gauge", "power required for quorum"),
    "consensus.round.*.prevote_power": ("gauge", "prevote power held at the frontier"),
    "consensus.round.*.precommit_power": ("gauge", "precommit power held at the frontier"),
    # hierarchy: checkpointing (per-subnet) and anchoring spans
    "checkpoint.*.submitted": ("counter", "checkpoints submitted to the parent"),
    "checkpoint.*.equivocations": ("counter", "checkpoint equivocations detected"),
    "checkpoint.*.fraud_proofs": ("counter", "checkpoint fraud proofs accepted"),
    "checkpoint.lag": ("summary", "seal-to-commit lag of anchored checkpoints"),
    "checkpoint.lag.L*": ("summary", "checkpoint lag by source-subnet level"),
    "checkpoint.hop.seal_to_submit": ("summary", "checkpoint seal-to-submit hop time"),
    "checkpoint.hop.submit_to_commit": ("summary", "checkpoint submit-to-commit hop time"),
    # hierarchy: cross-net messaging (per-subnet)
    "crossmsg.*.topdown_ok": ("counter", "top-down cross-messages applied"),
    "crossmsg.*.topdown_failed": ("counter", "top-down cross-messages failed"),
    "crossmsg.*.bottomup_ok": ("counter", "bottom-up cross-messages applied"),
    "crossmsg.*.bottomup_failed": ("counter", "bottom-up cross-messages failed"),
    "crosspool.*.topdown_seen": ("counter", "top-down cross-messages pooled"),
    "crosspool.*.bottomup_seen": ("counter", "bottom-up cross-messages pooled"),
    # hierarchy: content resolution
    "resolution.push_sent": ("counter", "content pushes sent"),
    "resolution.push_stored": ("counter", "pushed content stored"),
    "resolution.push_dropped": ("counter", "pushed content dropped (cache full)"),
    "resolution.pull_sent": ("counter", "content pulls sent"),
    "resolution.pull_served": ("counter", "content pulls served"),
    "resolution.pull_miss": ("counter", "content pulls that missed"),
    "resolution.resolved": ("counter", "contents resolved end-to-end"),
    "resolution.bad_content": ("counter", "contents failing CID verification"),
    # hierarchy: checkpoint acceleration
    "accel.certified": ("counter", "acceleration certificates issued"),
    "accel.received": ("counter", "acceleration certificates received"),
    "accel.settled": ("counter", "accelerated checkpoints settled"),
    "accel.expired": ("counter", "acceleration certificates expired"),
    "accel.bad_certificates": ("counter", "invalid acceleration certificates"),
    # telemetry: cross-net span tracer
    "xnet.spans.started": ("counter", "cross-net spans started"),
    "xnet.spans.delivered": ("counter", "cross-net spans delivered"),
    "xnet.spans.failed": ("counter", "cross-net spans failed"),
    "xnet.hop.submit": ("summary", "submit-to-enqueue hop time"),
    "xnet.hop.submit.L*": ("summary", "submit hop time by source level"),
    "xnet.hop.topdown": ("summary", "top-down hop time"),
    "xnet.hop.topdown.L*": ("summary", "top-down hop time by level"),
    "xnet.hop.bottomup": ("summary", "bottom-up hop time"),
    "xnet.hop.bottomup.L*": ("summary", "bottom-up hop time by level"),
    "xnet.e2e.topdown": ("summary", "end-to-end top-down delivery time"),
    "xnet.e2e.bottomup": ("summary", "end-to-end bottom-up delivery time"),
    "xnet.e2e.path": ("summary", "end-to-end delivery time via an LCA path"),
    # telemetry: invariant monitor
    "invariant.violations": ("counter", "invariant violations recorded (all auditors)"),
    "invariant.*.violations": ("counter", "invariant violations per auditor"),
    "invariant.exactly_once.fork_replays": ("counter", "cross-message replays on rival forks"),
    "invariant.exactly_once.nonce_gaps": ("counter", "cross-message nonce gaps observed"),
    # telemetry: health probe (per-subnet time series)
    "health.*.height": ("gauge", "subnet chain height over time"),
    "health.*.mempool": ("gauge", "subnet mempool depth over time"),
    "health.*.pending_crossmsgs": ("gauge", "pending cross-messages over time"),
    "health.*.checkpoint_lag": ("gauge", "checkpoint lag over time"),
    # telemetry: sampling profiler
    "profile.samples": ("gauge", "profiler samples taken"),
    "profile.interval_s": ("gauge", "profiler sampling interval"),
    "profile.sampler_s": ("gauge", "wall time spent inside the sampler"),
    "profile.cpu_share.*": ("gauge", "sampled CPU share per dispatch label"),
    "profile.alloc_bytes.*": ("gauge", "sampled allocation bytes per dispatch label"),
    "mem.allocated_blocks": ("gauge", "tracemalloc allocated blocks"),
    "mem.*": ("gauge", "process memory info fields"),
    # sim scheduler / dispatch bus
    "sim.dispatch.*.events": ("gauge", "events executed per dispatch label"),
    "sim.dispatch.*.wall_s": ("gauge", "cumulative wall time per dispatch label"),
    "sim.dispatch.*.wall_max_s": ("gauge", "max single-event wall time per label"),
    "sim.timer.errors.*": ("counter", "exceptions raised by a recurring timer"),
    # storage CID cache (emitted by the benchmark harness)
    "cid.cache.*": ("counter", "content-id cache hits/misses by kind"),
}


def _catalog_entry(raw: str):
    """The ``(type, help)`` catalog entry a raw metric name falls under.

    Exact match wins; otherwise the most specific (longest) wildcard
    pattern, with ``*`` matching any run — good enough for HELP lookup
    since interpolated values never contain dots.
    """
    entry = METRIC_CATALOG.get(raw)
    if entry is not None:
        return entry
    for pattern in sorted(METRIC_CATALOG, key=lambda p: (-len(p), p)):
        if "*" not in pattern:
            continue
        regex = re.escape(pattern).replace("\\*", ".*")
        if re.fullmatch(regex, raw):
            return METRIC_CATALOG[pattern]
    return None


def _prom_name(name: str) -> str:
    cleaned = _NAME_RE.sub("_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return cleaned


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` payload per the text exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def to_prometheus(sim) -> str:
    """Render the sim's metrics registry in Prometheus text format.

    Each family gets ``# HELP`` (the original dotted metric name — the
    sanitised family name loses it — plus the :data:`METRIC_CATALOG`
    description when the name falls under a declared family) and
    ``# TYPE`` lines, and label values are escaped, so the output passes
    ``promtool check metrics``.
    """
    metrics = sim.metrics
    lines: list[str] = []
    emitted: set = set()

    def emit(name: str, raw: str, kind: str, body: list) -> None:
        if name in emitted:  # sanitisation collision: keep the first
            return
        emitted.add(name)
        entry = _catalog_entry(raw)
        help_text = raw if entry is None else f"{raw}: {entry[1]}"
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(body)

    for raw, counter in sorted(metrics.counters.items()):
        name = _prom_name(raw)
        emit(name, raw, "counter", [f"{name} {counter.value}"])
    for raw, gauge in sorted(metrics.gauges.items()):
        name = _prom_name(raw)
        emit(name, raw, "gauge", [f"{name} {_fmt(gauge.value)}"])
    for raw, histogram in sorted(metrics.histograms.items()):
        name = _prom_name(raw)
        summary = histogram.summary()
        body = []
        for label, quantile in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
            value = summary[label]
            if value is not None:
                quantile_value = _escape_label_value(quantile)
                body.append(f'{name}{{quantile="{quantile_value}"}} {_fmt(value)}')
        body.append(f"{name}_count {summary['count']}")
        body.append(f"{name}_sum {_fmt(histogram.total)}")
        emit(name, raw, "summary", body)
    for raw, series in sorted(metrics.series.items()):
        name = _prom_name(raw)
        if series.points:
            emit(name, raw, "gauge", [f"{name} {_fmt(series.points[-1][1])}"])
    return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def write_prometheus(path: str, sim) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_prometheus(sim))
    return path


# ----------------------------------------------------------------------
# Chrome trace events (Perfetto)
# ----------------------------------------------------------------------
_SUBNET_PID = 1
_DISPATCH_PID = 2
_PROFILE_PID = 3
_ROUNDS_PID = 4


def to_chrome_trace(
    sim, tracer=None, top_dispatch: int = 16, profiler=None, rounds=None
) -> dict:
    """Chrome trace-event JSON: subnet span tracks + a dispatch profile.

    Cross-net/checkpoint spans use **simulated** microseconds; the
    dispatch track lays each label's cumulative **wall-clock** time
    end-to-end (a profile, not a timeline).  Passing a
    :class:`~repro.telemetry.profiler.SamplingProfiler` adds a third
    process: per-label sampled-CPU slices (samples × interval laid
    end-to-end, top leaf frames in the args) and an RSS counter track on
    the profiler's real wall-clock timeline.  A
    :class:`~repro.telemetry.rounds.RoundTracer` (passed explicitly or
    found on ``sim.round_tracer``) adds a fourth process: one track per
    validator carrying its consensus rounds as slices (``h12 r0`` …) with
    votes, locks, timeouts and commits as instant events inside them.
    """
    events: list[dict] = []
    events.append(_meta(_SUBNET_PID, "process_name", name="subnets (simulated time)"))

    if tracer is not None:
        subnets: set = set()
        for span_events in tracer.traces.values():
            subnets.update(event.subnet for event in span_events)
        for entry in tracer.checkpoints.values():
            subnets.update(
                entry[k] for k in ("source", "parent") if entry.get(k) is not None
            )
        tids = {path: i + 1 for i, path in enumerate(sorted(subnets))}
        for path, tid in tids.items():
            events.append(_meta(_SUBNET_PID, "thread_name", tid=tid, name=path))

        for trace_id in sorted(tracer.traces):
            span_events = tracer.traces[trace_id]
            info = tracer.trace_info.get(trace_id, {})
            for prev, cur in zip(span_events, span_events[1:]):
                events.append({
                    "name": f"{prev.subnet} → {cur.subnet} ({cur.phase})",
                    "cat": "xnet",
                    "ph": "X",
                    "ts": prev.time * 1e6,
                    "dur": max((cur.time - prev.time) * 1e6, 1.0),
                    "pid": _SUBNET_PID,
                    "tid": tids[cur.subnet],
                    "args": {
                        "trace": trace_id[:16],
                        "value": info.get("value"),
                        "to_subnet": info.get("to_subnet"),
                    },
                })
            last = span_events[-1]
            events.append({
                "name": f"xnet.{last.phase}",
                "cat": "xnet",
                "ph": "i",
                "s": "t",
                "ts": last.time * 1e6,
                "pid": _SUBNET_PID,
                "tid": tids[last.subnet],
                "args": {"trace": trace_id[:16]},
            })

        for ckpt_hex in sorted(tracer.checkpoints):
            entry = tracer.checkpoints[ckpt_hex]
            sealed, committed = entry.get("sealed"), entry.get("committed")
            source = entry.get("source")
            if sealed is None or committed is None or source not in tids:
                continue
            events.append({
                "name": f"checkpoint w{entry.get('window')}",
                "cat": "checkpoint",
                "ph": "X",
                "ts": sealed * 1e6,
                "dur": max((committed - sealed) * 1e6, 1.0),
                "pid": _SUBNET_PID,
                "tid": tids[source],
                "args": {"cid": ckpt_hex[:16], "parent": entry.get("parent")},
            })

    events.append(_meta(_DISPATCH_PID, "process_name", name="dispatch profile (wall clock)"))
    events.append(_meta(_DISPATCH_PID, "thread_name", tid=1, name="cumulative wall time"))
    offset = 0.0
    for row in sim.dispatch.summary()[:top_dispatch]:
        duration = max(row["wall_s"] * 1e6, 1.0)
        events.append({
            "name": row["label"],
            "cat": "dispatch",
            "ph": "X",
            "ts": offset,
            "dur": duration,
            "pid": _DISPATCH_PID,
            "tid": 1,
            "args": {"events": row["events"], "mean_us": row["mean_s"] * 1e6},
        })
        offset += duration

    if profiler is not None:
        snapshot = profiler.snapshot()
        events.append(
            _meta(_PROFILE_PID, "process_name", name="cpu profile (sampled wall clock)")
        )
        events.append(
            _meta(_PROFILE_PID, "thread_name", tid=1, name="samples by dispatch label")
        )
        interval_us = snapshot["interval_s"] * 1e6
        offset = 0.0
        for label, row in snapshot["labels"].items():
            if not row["samples"]:
                continue
            duration = max(row["samples"] * interval_us, 1.0)
            events.append({
                "name": label,
                "cat": "profile",
                "ph": "X",
                "ts": offset,
                "dur": duration,
                "pid": _PROFILE_PID,
                "tid": 1,
                "args": {
                    "samples": row["samples"],
                    "cpu_share": row["cpu_share"],
                    "alloc_bytes": row["alloc_bytes"],
                    "top_frames": [frame for frame, _ in row["top_frames"][:5]],
                },
            })
            offset += duration
        for elapsed, rss in profiler.rss_series():
            events.append({
                "name": "mem.rss_bytes",
                "cat": "profile",
                "ph": "C",
                "ts": elapsed * 1e6,
                "pid": _PROFILE_PID,
                "args": {"bytes": rss},
            })

    if rounds is None:
        rounds = getattr(sim, "round_tracer", None)
    if rounds is not None:
        events.extend(_round_events(rounds))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _round_events(rounds) -> list:
    """Per-validator consensus-round tracks (simulated time).

    Each validator gets a thread; ``round_start``/``round_skip`` entries
    become slices spanning until the next round boundary (or commit), and
    every other event kind lands inside as an instant with its fields.
    """
    events: list[dict] = []
    events.append(
        _meta(_ROUNDS_PID, "process_name", name="consensus rounds (simulated time)")
    )
    keys = sorted(rounds.timelines)
    tids = {key: i + 1 for i, key in enumerate(keys)}
    for key, tid in tids.items():
        subnet, node_id = key
        events.append(_meta(_ROUNDS_PID, "thread_name", tid=tid, name=node_id))
        timeline = rounds.timeline(subnet, node_id)
        open_slice = None  # (start_ts, name, fields)

        def close(end_ts: float) -> None:
            nonlocal open_slice
            if open_slice is None:
                return
            start, name, fields = open_slice
            events.append({
                "name": name,
                "cat": "round",
                "ph": "X",
                "ts": start * 1e6,
                "dur": max((end_ts - start) * 1e6, 1.0),
                "pid": _ROUNDS_PID,
                "tid": tid,
                "args": fields,
            })
            open_slice = None

        for time, kind, fields in timeline:
            if kind in ("round_start", "round_skip"):
                close(time)
                name = f"h{fields.get('height')} r{fields.get('round')}"
                if kind == "round_skip":
                    name += " (skip)"
                open_slice = (time, name, dict(fields))
            else:
                events.append({
                    "name": kind,
                    "cat": "round",
                    "ph": "i",
                    "s": "t",
                    "ts": time * 1e6,
                    "pid": _ROUNDS_PID,
                    "tid": tid,
                    "args": dict(fields),
                })
                if kind == "commit":
                    close(time)
        if open_slice is not None and timeline:
            close(timeline[-1][0])
    return events


def _meta(pid: int, kind: str, tid: int = 0, name: str = "") -> dict:
    return {
        "name": kind,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def write_chrome_trace(
    path: str, sim, tracer=None, top_dispatch: int = 16, profiler=None, rounds=None
) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            to_chrome_trace(sim, tracer, top_dispatch, profiler=profiler, rounds=rounds),
            handle,
            allow_nan=False,
        )
        handle.write("\n")
    return path

#!/usr/bin/env python3
"""Atomic cross-net execution: the Fig. 5 walk-through (§IV-D).

Alice owns a "gem" asset in /root/gamex; Bob owns a "bond" in /root/defi.
They atomically swap ownership with the rootnet's SCA (their closest common
parent) coordinating a two-phase commit:

  1. initialization — both lock their inputs in their own subnets and open
     the execution at the LCA;
  2. off-chain execution — each party gathers the locked input states and
     computes the same output locally;
  3. commit — each submits the output CID to the LCA's SCA, which commits
     when all submissions match;
  4. termination — cross-net notifications let each subnet apply the output
     and release the locks.

The second half shows the abort path: Bob walks away, Alice's abort reverts
both subnets untouched.

Run:  python examples/atomic_swap.py
"""

from repro import HierarchicalSystem, SCA_ADDRESS, SubnetConfig
from repro.hierarchy.atomic import AtomicExecutionClient, AtomicParty, asset_owner


def owner_name(system, subnet, asset, wallets):
    owner = asset_owner(system, subnet, asset)
    for name, wallet in wallets.items():
        if wallet.address.raw == owner:
            return name
    return owner


def main() -> None:
    print("== Atomic cross-net asset swap (Fig. 5) ==\n")
    system = HierarchicalSystem(
        seed=99, root_validators=3, root_block_time=0.5, checkpoint_period=6,
        wallet_funds={"alice": 1_000_000, "bob": 1_000_000},
    ).start()
    gamex = system.spawn_subnet(
        SubnetConfig(name="gamex", validators=3, block_time=0.25, checkpoint_period=6)
    )
    defi = system.spawn_subnet(
        SubnetConfig(name="defi", validators=3, block_time=0.25, checkpoint_period=6)
    )
    alice, bob = system.wallets["alice"], system.wallets["bob"]
    wallets = {"alice": alice, "bob": bob}

    alice.send(system.node(gamex), SCA_ADDRESS, method="create_asset",
               params={"name": "gem"})
    bob.send(system.node(defi), SCA_ADDRESS, method="create_asset",
             params={"name": "bond"})
    system.run_for(2.0)
    print(f"gem  in {gamex}: owned by {owner_name(system, gamex, 'gem', wallets)}")
    print(f"bond in {defi}: owned by {owner_name(system, defi, 'bond', wallets)}")

    print("\n-- happy path --")
    client = AtomicExecutionClient(
        system, exec_id="swap-gem-bond",
        parties=[
            AtomicParty(wallet=alice, subnet=gamex, assets=("gem",)),
            AtomicParty(wallet=bob, subnet=defi, assets=("bond",)),
        ],
    )
    print(f"execution subnet (closest common parent): {client.lca}")
    t0 = system.sim.now
    client.initialize()
    print(f"inputs locked in both subnets at t+{system.sim.now - t0:.2f}s")
    output = client.execute_offchain()
    print(f"off-chain execution result: {output['owners']}")
    client.submit_outputs()
    system.wait_for(lambda: client.status_at_lca() == "committed")
    print(f"LCA committed at t+{system.sim.now - t0:.2f}s")
    client.wait_terminated()
    print(f"applied in every subnet at t+{system.sim.now - t0:.2f}s")
    print(f"gem  now owned by {owner_name(system, gamex, 'gem', wallets)}")
    print(f"bond now owned by {owner_name(system, defi, 'bond', wallets)}")

    print("\n-- abort path: bob disappears --")
    alice.send(system.node(gamex), SCA_ADDRESS, method="create_asset",
               params={"name": "gem2"})
    bob.send(system.node(defi), SCA_ADDRESS, method="create_asset",
             params={"name": "bond2"})
    system.run_for(2.0)
    retry = AtomicExecutionClient(
        system, exec_id="swap-take-two",
        parties=[
            AtomicParty(wallet=alice, subnet=gamex, assets=("gem2",)),
            AtomicParty(wallet=bob, subnet=defi, assets=("bond2",)),
        ],
    )
    retry.initialize()
    print("inputs locked; bob never submits…")
    retry.abort(party_index=0)  # "any user is allowed to abort at any time"
    system.wait_for(lambda: retry.status_at_lca() == "aborted")
    retry.wait_terminated()
    print(f"aborted and unlocked everywhere; "
          f"gem2 still owned by {owner_name(system, gamex, 'gem2', wallets)}, "
          f"bond2 by {owner_name(system, defi, 'bond2', wallets)}")
    print(f"\ndone at t={system.sim.now:.1f}s")


if __name__ == "__main__":
    main()

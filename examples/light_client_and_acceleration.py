#!/usr/bin/env python3
"""Light clients and accelerated payments (§II, §IV-A).

Two paper features for participants who do *not* run a subnet's consensus:

1. a **checkpoint light client** follows a subnet purely from the signed
   checkpoints committed on the parent chain — verifying the signature
   policy and chain linkage — and can check that a batch of cross-msgs was
   genuinely emitted by the subnet;
2. **pending-payment certificates** let a recipient see an incoming
   cross-net payment within a block time, long before checkpoint-bound
   settlement ("to indicate a pending payment or even as tentative
   information to start operating as if these funds were already settled").

Run:  python examples/light_client_and_acceleration.py
"""

from repro import HierarchicalSystem, ROOTNET, SignaturePolicy, SubnetConfig
from repro.hierarchy.light_client import follow_parent_chain


def main() -> None:
    print("== Light clients & accelerated cross-net payments ==\n")
    system = HierarchicalSystem(
        seed=21, root_validators=3, root_block_time=0.5, checkpoint_period=16,
        accelerate_root=True, wallet_funds={"merchant": 10, "customer": 10**6},
    ).start()
    policy = SignaturePolicy(kind="multisig", threshold=2)
    shop = system.spawn_subnet(
        SubnetConfig(name="shop", validators=3, block_time=0.25,
                     checkpoint_period=16, policy=policy, accelerate=True)
    )
    customer = system.wallets["customer"]
    merchant = system.wallets["merchant"]
    system.fund_subnet(customer, shop, customer.address, 500_000)
    system.wait_for(lambda: system.balance(shop, customer.address) >= 500_000)

    print("-- the merchant (on the rootnet) watches for a payment --")
    root_node = system.node(ROOTNET)
    t0 = system.sim.now
    system.cross_send(customer, shop, ROOTNET, merchant.address, 75_000)
    system.wait_for(
        lambda: root_node.acceleration.pending_for(merchant.address) == 75_000
    )
    print(f"t+{system.sim.now - t0:.2f}s  pending certificate: 75,000 incoming, "
          f"vouched by "
          f"{root_node.acceleration.pending_details(merchant.address)[0][1]} "
          f"subnet validators")
    system.wait_for(lambda: system.balance(ROOTNET, merchant.address) >= 75_000)
    print(f"t+{system.sim.now - t0:.2f}s  settled on the rootnet "
          f"(checkpoint window is {16 * 0.25:.0f}s — the certificate won by "
          f"{(system.sim.now - t0) / 0.3:.0f}x)")

    print("\n-- a light client audits the subnet from the parent chain --")
    system.run_for(10.0)
    client = follow_parent_chain(
        root_node,
        system.sa_address(shop),
        shop,
        policy,
        [w.address for w in system.validator_wallets(shop)],
    )
    print(f"verified checkpoint chain length: {len(client.chain)}")
    print(f"latest proven subnet chain commitment: {client.latest_proof.short()}")
    print(f"trust weight behind the head checkpoint: "
          f"{client.trust_weight} validator signatures (policy needs 2)")
    # The light client can certify that the merchant's payment batch was
    # genuinely emitted by the subnet.
    for verified in client.chain:
        for meta in verified.checkpoint.cross_meta:
            batch = system.node(shop).resolution.resolve_local(meta.msgs_cid)
            if batch and any(m.to_addr == merchant.address for m in batch):
                print(f"payment batch {meta.msgs_cid.hex()[:10]}… appears in "
                      f"checkpoint window {verified.checkpoint.window} — "
                      f"inclusion verified: {client.verify_cross_batch(batch)}")
    print(f"\ndone at t={system.sim.now:.1f}s")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Cross-subnet payments across a multi-level hierarchy (§IV-A, Fig. 3).

Builds the topology of Fig. 1 — a rootnet with two branches, one of them
two levels deep — and demonstrates all three cross-net message classes:

- top-down   (root -> /root/apps/games, two hops of SCA routing);
- bottom-up  (/root/apps/games -> root, two checkpoint relays);
- path       (/root/apps/games -> /root/storage, up to the LCA and down).

Then runs a mixed payment workload and prints per-class latency stats.

Run:  python examples/cross_subnet_payments.py
"""

from repro import HierarchicalSystem, ROOTNET, SubnetConfig, audit_system
from repro.analysis import Table


def main() -> None:
    print("== Cross-subnet payments across the hierarchy ==\n")
    system = HierarchicalSystem(
        seed=7,
        root_validators=3,
        root_block_time=0.5,
        checkpoint_period=6,
        wallet_funds={"alice": 5_000_000, "bob": 5_000_000},
    ).start()

    print("building the hierarchy:")
    apps = system.spawn_subnet(
        SubnetConfig(name="apps", validators=3, engine="poa",
                     block_time=0.25, checkpoint_period=6)
    )
    print(f"  spawned {apps}")
    games = system.spawn_subnet(
        SubnetConfig(name="games", parent=apps, validators=3, engine="mir",
                     block_time=0.5, checkpoint_period=6)
    )
    print(f"  spawned {games} (mir multi-leader)")
    storage = system.spawn_subnet(
        SubnetConfig(name="storage", validators=3, engine="pos",
                     block_time=0.5, checkpoint_period=6)
    )
    print(f"  spawned {storage} (proof-of-stake)")

    alice, bob = system.wallets["alice"], system.wallets["bob"]
    table = Table("cross-net transfer latencies", ["route", "class", "latency (s)"])

    # Top-down, two hops: the rootnet SCA freezes funds and enqueues toward
    # /root/apps; the /root/apps SCA mints-and-forwards toward games.
    start = system.sim.now
    system.cross_send(alice, ROOTNET, games, alice.address, 500_000)
    system.wait_for(lambda: system.balance(games, alice.address) >= 500_000)
    table.add_row("/root -> /root/apps/games", "top-down x2", system.sim.now - start)

    # Bottom-up, two checkpoint relays: burned in games, meta climbs to
    # apps, relayed to root, released there.
    start = system.sim.now
    system.cross_send(alice, games, ROOTNET, bob.address, 40_000)
    root_bob = system.balance(ROOTNET, bob.address)
    system.wait_for(
        lambda: system.balance(ROOTNET, bob.address) >= 5_000_000 + 40_000
    )
    table.add_row("/root/apps/games -> /root", "bottom-up x2", system.sim.now - start)

    # Path message: up to the LCA (root), then down into /root/storage.
    start = system.sim.now
    system.cross_send(alice, games, storage, bob.address, 25_000)
    system.wait_for(lambda: system.balance(storage, bob.address) >= 25_000)
    table.add_row("/root/apps/games -> /root/storage", "path (up x2, down x1)",
                  system.sim.now - start)

    table.show()

    print("\nSCA books along the way:")
    for parent, child in ((ROOTNET, apps), (apps, games), (ROOTNET, storage)):
        record = system.child_record(parent, child)
        print(f"  {child}: injected={record['injected_total']:,} "
              f"released={record['released_total']:,} "
              f"circulating={record['circulating']:,}")

    audit = audit_system(system)
    print(f"\nsupply audit across the whole hierarchy: "
          f"{'OK' if audit.ok else audit.violations}")
    print(f"done at t={system.sim.now:.1f}s "
          f"({system.sim.events_executed:,} events)")


if __name__ == "__main__":
    main()

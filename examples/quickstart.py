#!/usr/bin/env python3
"""Quickstart: spawn a subnet, fund it, transact, and withdraw.

Walks the basic lifecycle of §II in ~40 simulated seconds:

1. start a rootnet (3 validators, PoA, 1s blocks);
2. spawn a child subnet running Tendermint at 4x the block rate —
   "a subset of users requiring lower latency or higher throughput can
   spawn a new subnet to accommodate their performance requirements";
3. inject funds top-down (freezing them in the parent SCA);
4. make fast intra-subnet payments;
5. send value bottom-up to the rootnet via the checkpointing machinery.

Run:  python examples/quickstart.py
"""

from repro import HierarchicalSystem, ROOTNET, SubnetConfig, audit_system


def main() -> None:
    print("== Hierarchical Consensus quickstart ==\n")
    system = HierarchicalSystem(
        seed=42,
        root_validators=3,
        root_block_time=1.0,
        checkpoint_period=8,
        wallet_funds={"alice": 1_000_000, "bob": 1_000_000},
    ).start()
    alice, bob = system.wallets["alice"], system.wallets["bob"]
    print(f"rootnet running; alice={alice.address}, bob={bob.address}")

    print("\n-- spawning subnet /root/fast (tendermint, 0.25s blocks) --")
    subnet = system.spawn_subnet(
        SubnetConfig(
            name="fast", validators=4, engine="tendermint",
            block_time=0.25, checkpoint_period=8,
        )
    )
    record = system.child_record(ROOTNET, subnet)
    print(f"spawned {subnet} at t={system.sim.now:.1f}s — "
          f"status={record['status']}, collateral={record['collateral']}")

    print("\n-- top-down: alice injects 100k into the subnet --")
    system.fund_subnet(alice, subnet, alice.address, 100_000)
    system.wait_for(lambda: system.balance(subnet, alice.address) >= 100_000)
    print(f"alice's subnet balance: {system.balance(subnet, alice.address)} "
          f"(t={system.sim.now:.1f}s)")
    print(f"frozen in parent SCA, circulating supply now "
          f"{system.child_record(ROOTNET, subnet)['circulating']}")

    print("\n-- fast intra-subnet payments --")
    start = system.sim.now
    for _ in range(5):
        system.transfer(alice, subnet, bob.address, 1_000)
    system.wait_for(lambda: system.balance(subnet, bob.address) == 5_000)
    print(f"5 payments committed in {system.sim.now - start:.2f}s "
          f"(bob's subnet balance: {system.balance(subnet, bob.address)})")

    print("\n-- bottom-up: bob withdraws 3k to the rootnet --")
    root_before = system.balance(ROOTNET, bob.address)
    start = system.sim.now
    system.cross_send(bob, subnet, ROOTNET, bob.address, 3_000)
    system.wait_for(lambda: system.balance(ROOTNET, bob.address) == root_before + 3_000)
    print(f"withdrawal arrived on the rootnet in {system.sim.now - start:.2f}s "
          f"(burned in the subnet, released from the parent's frozen pool)")

    audit = audit_system(system)
    print(f"\nsupply audit: {'OK' if audit.ok else audit.violations}")
    record = system.child_record(ROOTNET, subnet)
    print(f"final books — injected={record['injected_total']}, "
          f"released={record['released_total']}, "
          f"circulating={record['circulating']}")
    print(f"\ndone at t={system.sim.now:.1f} simulated seconds "
          f"({system.sim.events_executed:,} events)")


if __name__ == "__main__":
    main()

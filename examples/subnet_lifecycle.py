#!/usr/bin/env python3
"""Subnet lifecycle and security: collateral, slashing, save & recover.

Demonstrates §III end to end:

1. miners join with stake; the subnet activates once collateral and the
   validator minimum are met;
2. an equivocating checkpoint signer is caught — honest validators build a
   fraud proof from the two conflicting signed checkpoints and the SCA
   slashes the subnet's collateral;
3. miners leave, dropping collateral under minCollateral: the subnet goes
   *inactive* and the SCA refuses cross-net traffic;
4. before the subnet is killed, a participant calls ``save()`` with a
   merkle balances snapshot; after the kill, a user proves her balance and
   recovers her funds on the parent (§III-C).

Run:  python examples/subnet_lifecycle.py
"""

from repro import HierarchicalSystem, ROOTNET, SCA_ADDRESS, SignaturePolicy, SubnetConfig
from repro.crypto.merkle import MerkleTree


def show_record(system, subnet, label):
    record = system.child_record(ROOTNET, subnet)
    print(f"  [{label}] status={record['status']} collateral={record['collateral']} "
          f"slashed={record['slashed_total']} circulating={record['circulating']}")


def main() -> None:
    print("== Subnet lifecycle: stake, slash, save, recover ==\n")
    system = HierarchicalSystem(
        seed=13, root_validators=3, root_block_time=0.5, checkpoint_period=4,
        wallet_funds={"carol": 1_000_000},
    ).start()

    print("-- a subnet with one equivocating validator --")
    subnet = system.spawn_subnet(
        SubnetConfig(
            name="shady", validators=3, block_time=0.25, checkpoint_period=4,
            policy=SignaturePolicy(kind="single"),
            byzantine={0: {"equivocate_checkpoint"}},  # validator 0 double-signs
        )
    )
    show_record(system, subnet, "after activation")

    carol = system.wallets["carol"]
    system.fund_subnet(carol, subnet, carol.address, 30_000)
    system.wait_for(lambda: system.balance(subnet, carol.address) >= 30_000)
    print(f"  carol holds {system.balance(subnet, carol.address)} inside {subnet}")

    print("\n-- honest validators catch the equivocation (§III-B) --")
    system.wait_for(
        lambda: system.child_record(ROOTNET, subnet)["slashed_total"] > 0,
        timeout=60.0,
    )
    proofs = system.sim.metrics.counter(f"checkpoint.{subnet.path}.fraud_proofs").value
    print(f"  fraud proofs submitted: {proofs}")
    show_record(system, subnet, "after slashing")

    print("\n-- repeated slashing drives the subnet inactive --")
    system.wait_for(
        lambda: system.child_record(ROOTNET, subnet)["status"] == "inactive",
        timeout=120.0,
    )
    show_record(system, subnet, "inactive")
    before = system.balance(ROOTNET, carol.address)
    system.fund_subnet(carol, subnet, carol.address, 1_000)
    system.run_for(3.0)
    refused = system.balance(ROOTNET, carol.address) == before
    print(f"  further cross-net funding refused: {refused}")

    print("\n-- save() the state, kill the subnet, recover funds (§III-C) --")
    subnet_vm = system.node(subnet).vm
    balances = sorted(
        (key[len('balance/'):], subnet_vm.state.get(key))
        for key in subnet_vm.state.keys("balance/")
    )
    tree = MerkleTree(balances)
    index = next(i for i, (addr, _) in enumerate(balances)
                 if addr == carol.address.raw)
    proof = tree.prove(index)
    validator_wallets = system.validator_wallets(subnet)
    validator_wallets[1].send(
        system.node(ROOTNET), SCA_ADDRESS, method="save_state",
        params={"subnet_path": subnet.path,
                "epoch": system.node(subnet).head().height,
                "state_cid": subnet_vm.state_root(),
                "balances_root": tree.root},
    )
    for wallet in validator_wallets:
        wallet.send(system.node(ROOTNET), system.sa_address(subnet), method="vote_kill")
    system.wait_for(lambda: system.child_record(ROOTNET, subnet)["status"] == "killed")
    show_record(system, subnet, "killed")

    root_before = system.balance(ROOTNET, carol.address)
    carol.send(
        system.node(ROOTNET), SCA_ADDRESS, method="claim_saved_funds",
        params={"subnet_path": subnet.path, "balance": 30_000, "proof": proof},
    )
    system.wait_for(lambda: system.balance(ROOTNET, carol.address) > root_before)
    print(f"  carol recovered {system.balance(ROOTNET, carol.address) - root_before} "
          f"on the rootnet with a merkle balance proof")
    show_record(system, subnet, "after claim")
    print(f"\ndone at t={system.sim.now:.1f}s")


if __name__ == "__main__":
    main()

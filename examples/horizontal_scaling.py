#!/usr/bin/env python3
"""Horizontal scaling demo: throughput grows with every spawned subnet.

A compact version of experiment E1: the same per-chain capacity, offered
load beyond one chain's limit, and subnets spawned on demand.  The single
rootnet saturates; each spawned subnet adds its own capacity — the paper's
central claim (§I: blockchains "unable to increase their performance by
adding more participants" become horizontally scalable with subnets).

Run:  python examples/horizontal_scaling.py
"""

from repro import HierarchicalSystem, SubnetConfig
from repro.analysis import Table
from repro.workloads import PaymentWorkload

BLOCK_TIME = 0.5
CAPACITY = 20  # messages per block -> 40 tx/s per chain
LOAD_PER_CHAIN = 60.0  # offered, saturating
MEASURE = 20.0


def measure(n_subnets: int) -> float:
    system = HierarchicalSystem(
        seed=1000 + n_subnets, root_validators=3, root_block_time=BLOCK_TIME,
        checkpoint_period=20,
    ).start()
    workloads = []
    for i in range(n_subnets):
        subnet = system.spawn_subnet(
            SubnetConfig(name=f"lane{i}", validators=3, block_time=BLOCK_TIME,
                         checkpoint_period=20, max_block_messages=CAPACITY)
        )
        senders = []
        for j in range(4):
            wallet = system.create_wallet(f"lane{i}-user{j}")
            system.fund_subnet(system.treasury, subnet, wallet.address, 10**9)
            senders.append(wallet)
        system.wait_for(
            lambda: all(system.balance(subnet, w.address) > 0 for w in senders)
        )
        workloads.append(
            PaymentWorkload(system.sim, system.nodes(subnet), senders,
                            rate=LOAD_PER_CHAIN, rng_scope=f"scale{i}").start()
        )
    start = system.sim.now
    system.run_for(MEASURE)
    return sum(w.stats.committed for w in workloads) / (system.sim.now - start)


def main() -> None:
    print("== Horizontal scaling: spawn subnets, gain throughput ==")
    print(f"per-chain capacity: {CAPACITY} msgs / {BLOCK_TIME}s block "
          f"= {CAPACITY / BLOCK_TIME:.0f} tx/s\n")
    table = Table("committed throughput vs subnets", ["subnets", "tx/s", "speedup"])
    baseline = None
    for k in (1, 2, 4):
        throughput = measure(k)
        baseline = baseline or throughput
        table.add_row(k, throughput, throughput / baseline)
    table.show()
    print("\nEach subnet orders only its own transactions — capacity adds up.")


if __name__ == "__main__":
    main()
